//! The conventional commit engine: in-order retirement from a reorder
//! buffer (the Table 1 baseline).

use super::{CommitEngine, DispatchStall, Dispatched, EngineCtx, Writeback};
use crate::stats::SimStats;
use koc_core::{CheckpointId, ReorderBuffer, RobEntry};
use koc_isa::{InstId, Instruction};
use koc_obs::{Event, Observer};

/// In-order ROB commit: instructions retire strictly in program order, up to
/// the commit width per cycle, once finished.
pub struct InOrderEngine {
    rob: ReorderBuffer,
}

impl InOrderEngine {
    /// An engine with a `rob_size`-entry reorder buffer.
    pub fn new(rob_size: usize) -> Self {
        InOrderEngine {
            rob: ReorderBuffer::new(rob_size),
        }
    }

    /// Squashes everything younger than `boundary` (exclusive) by walking
    /// the ROB's rename undo records, and rewinds fetch after `boundary`.
    fn squash_younger<O: Observer>(&mut self, boundary: InstId, ctx: &mut EngineCtx<'_, '_, O>) {
        let mut undo = Vec::new(); // koc-lint: allow(hot-path-alloc, "branch-recovery squash, not per cycle")
        while let Some(e) = self.rob.pop_younger_than(boundary) {
            undo.push((e.inst, e.rename));
        }
        ctx.undo_renames(&undo);
        ctx.squash_queues_from(boundary + 1);
        ctx.stats.recoveries.squashed_instructions += undo.len() as u64;
        ctx.rewind_fetch_to(boundary + 1);
    }
}

impl<O: Observer> CommitEngine<O> for InOrderEngine {
    fn name(&self) -> &'static str {
        "in-order-rob"
    }

    fn is_empty(&self) -> bool {
        self.rob.is_empty()
    }

    fn reserve(
        &mut self,
        _id: InstId,
        _inst: &Instruction,
        _ctx: &mut EngineCtx<'_, '_, O>,
    ) -> Result<(), DispatchStall> {
        if self.rob.has_space() {
            Ok(())
        } else {
            Err(DispatchStall::RobFull)
        }
    }

    fn allocate(&mut self, d: &Dispatched) -> CheckpointId {
        self.rob
            .push(RobEntry {
                inst: d.id,
                finished: false,
                rename: d.rename,
                is_store: d.is_store,
                is_branch: d.is_branch,
                ckpt: 0,
            })
            .expect("ROB space was reserved"); // koc-lint: allow(panic, "dispatch reserved ROB space this cycle")
        0
    }

    fn dispatched(
        &mut self,
        _d: &Dispatched,
        _ckpt: CheckpointId,
        _ctx: &mut EngineCtx<'_, '_, O>,
    ) {
    }

    fn frontend_drain(&mut self, _budget: usize, _ctx: &mut EngineCtx<'_, '_, O>) -> usize {
        0
    }

    fn wake(&mut self, _ctx: &mut EngineCtx<'_, '_, O>) -> usize {
        0
    }

    fn completed(&mut self, wb: &Writeback, _ctx: &mut EngineCtx<'_, '_, O>) {
        self.rob.mark_finished(wb.inst);
    }

    fn commit(&mut self, ctx: &mut EngineCtx<'_, '_, O>) {
        let mut committed = 0u64;
        let mut frontier = 0;
        while (committed as usize) < ctx.config.commit_width {
            let Some(e) = self.rob.pop_finished() else {
                break;
            };
            if let Some((_, _, Some(prev))) = e.rename {
                ctx.regs.free(prev);
            }
            ctx.inflight.remove(e.inst);
            if O::ENABLED {
                ctx.obs.event(ctx.cycle, Event::Commit { inst: e.inst });
            }
            frontier = e.inst + 1;
            committed += 1;
        }
        if committed == 0 {
            return;
        }
        ctx.stats.committed_instructions += committed;
        ctx.drain_stores(frontier);
        // In-order retirement never revisits committed instructions: the
        // replay window can forget everything behind the commit point.
        ctx.release_fetch_to(frontier);
    }

    fn recover_branch(&mut self, branch: InstId, ctx: &mut EngineCtx<'_, '_, O>) {
        ctx.stats.recoveries.near_recoveries += 1;
        self.squash_younger(branch, ctx);
    }

    fn recover_exception(&mut self, inst: InstId, ctx: &mut EngineCtx<'_, '_, O>) -> bool {
        // The baseline delivers the exception precisely by squashing
        // everything younger; the excepting instruction completes.
        self.squash_younger(inst, ctx);
        false
    }

    fn finalize(&mut self, _stats: &mut SimStats) {}
}
