//! Pluggable commit engines.
//!
//! The paper's whole contribution is a different *commit engine*: the
//! baseline retires in order from a ROB, the proposal retires whole
//! checkpoints out of order. Everything else in the pipeline — fetch,
//! rename, the issue queues, the functional units, the memory hierarchy —
//! is identical. This module makes that seam explicit: [`CommitEngine`] is
//! the trait a commit scheme implements, and the pipeline shell in
//! [`crate::pipeline`] drives whichever engine it is given without knowing
//! which variant it has.
//!
//! Engines receive an [`EngineCtx`] at every hook: mutable access to the
//! shared pipeline resources (rename map, register file, issue queues, LSQ,
//! memory, in-flight table, statistics and the fetch window). The engine
//! owns only its private retirement structures — the ROB for
//! [`inorder::InOrderEngine`], the checkpoint table / pseudo-ROB / SLIQ for
//! [`checkpointed::CheckpointedEngine`].
//!
//! Adding a third engine requires implementing [`CommitEngine`] and (if it
//! should be constructible from a [`CommitConfig`]) extending
//! [`from_config`]; the pipeline shell needs no edits.

pub mod checkpointed;
pub mod inorder;

pub use checkpointed::CheckpointedEngine;
pub use inorder::InOrderEngine;

use crate::config::{CommitConfig, ProcessorConfig};
use crate::inflight::{InFlight, InFlightTable};
use crate::stats::SimStats;
use koc_core::{CamRenameMap, CheckpointId, InstructionQueue, LoadStoreQueue, PhysRegFile};
use koc_isa::{ArchReg, InstId, Instruction, OpKind, PhysReg, ReplayWindow};
use koc_mem::MemoryHierarchy;
use koc_obs::{Event, NullObserver, Observer};

/// Why the engine refused to accept the next instruction this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchStall {
    /// The reorder buffer is full (in-order engine).
    RobFull,
    /// The checkpoint table is full and the open window hit its store bound
    /// (checkpointed engine).
    CheckpointFull,
}

/// A destination rename record: `(architectural, new physical, previous
/// physical)`.
pub type RenameUndo = (ArchReg, PhysReg, Option<PhysReg>);

/// Everything the pipeline shell knows about an instruction at dispatch.
#[derive(Debug, Clone, Copy)]
pub struct Dispatched {
    /// Trace position.
    pub id: InstId,
    /// Operation kind.
    pub kind: OpKind,
    /// Destination rename record, if the instruction writes a register.
    pub rename: Option<RenameUndo>,
    /// Whether the instruction is a store.
    pub is_store: bool,
    /// Whether the instruction is a branch.
    pub is_branch: bool,
}

/// Everything the pipeline shell knows about an instruction at write-back.
#[derive(Debug, Clone, Copy)]
pub struct Writeback {
    /// Trace position.
    pub inst: InstId,
    /// Owning checkpoint (0 for engines without checkpoints).
    pub ckpt: CheckpointId,
    /// Operation kind.
    pub kind: OpKind,
    /// Architectural destination, if any.
    pub dest_arch: Option<ArchReg>,
    /// Renamed destination, if any.
    pub dest_phys: Option<PhysReg>,
}

/// Mutable views of the shared pipeline resources, passed to every engine
/// hook. The engine and the shell never alias: the shell constructs the
/// context fresh per call from its own fields.
///
/// The observer seam rides along as the generic parameter `O`
/// (monomorphized to [`NullObserver`] by default, which compiles every
/// observation away): engines report commit/squash/checkpoint lifecycle
/// through `ctx.obs`, always guarded by `O::ENABLED`.
pub struct EngineCtx<'c, 'a, O: Observer = NullObserver> {
    /// The run's configuration.
    pub config: &'c ProcessorConfig,
    /// Current cycle.
    pub cycle: u64,
    /// The fetch stream: a [`ReplayWindow`] over the run's
    /// [`InstructionSource`](koc_isa::InstructionSource). Recovery rewinds
    /// it; commit [releases](ReplayWindow::release_to) it; instructions
    /// still inside the window are looked up by stream position.
    pub fetch: &'c mut ReplayWindow<'a>,
    /// The CAM rename map with future-free bits.
    pub rename: &'c mut CamRenameMap,
    /// Physical register file / free list.
    pub regs: &'c mut PhysRegFile,
    /// Integer instruction queue.
    pub int_iq: &'c mut InstructionQueue,
    /// Floating-point instruction queue.
    pub fp_iq: &'c mut InstructionQueue,
    /// Load/store queue.
    pub lsq: &'c mut LoadStoreQueue,
    /// Memory hierarchy (committed stores drain into it).
    pub mem: &'c mut MemoryHierarchy,
    /// In-flight instruction table.
    pub inflight: &'c mut InFlightTable,
    /// Count of dispatched-but-not-issued instructions.
    pub live_count: &'c mut usize,
    /// Run statistics.
    pub stats: &'c mut SimStats,
    /// The run's observer (a no-op unless the pipeline was built with one).
    pub obs: &'c mut O,
}

impl<O: Observer> EngineCtx<'_, '_, O> {
    /// Releases committed stores older than `frontier` to the memory
    /// hierarchy (L2 misses post to the timed backend as bank writes).
    pub fn drain_stores(&mut self, frontier: InstId) {
        while let Some(s) = self.lsq.pop_store_older_than(frontier) {
            self.mem.drain_store(s.addr, self.cycle);
        }
    }

    /// Removes a squashed instruction's in-flight record, maintaining the
    /// live count, and returns it for engine-side accounting.
    pub fn forget_inflight(&mut self, inst: InstId) -> Option<InFlight> {
        let fl = self.inflight.remove(inst)?;
        if fl.is_live() {
            *self.live_count = self.live_count.saturating_sub(1);
        }
        Some(fl)
    }

    /// Squashes both issue queues and the LSQ from `boundary` (inclusive).
    pub fn squash_queues_from(&mut self, boundary: InstId) {
        self.int_iq.squash_from(boundary);
        self.fp_iq.squash_from(boundary);
        self.lsq.squash_from(boundary);
    }

    /// Rewinds fetch so it restarts at `target`, if fetch has moved past it.
    pub fn rewind_fetch_to(&mut self, target: InstId) {
        if target < self.fetch.position() {
            self.fetch.rewind_to(target);
        }
    }

    /// Declares that no recovery will ever rewind below `frontier` again
    /// (every older recovery point has retired), letting the fetch replay
    /// window drop its tail. Engines call this as commit advances; the
    /// frontier must not overtake any instruction the engine may still look
    /// up (e.g. pseudo-ROB entries awaiting classification).
    pub fn release_fetch_to(&mut self, frontier: InstId) {
        self.fetch.release_to(frontier);
    }

    /// Undoes the youngest-first rename records of a squash walk and removes
    /// the squashed instructions from the in-flight table. Returns the
    /// squashed in-flight records (for engine-side accounting; entries that
    /// were no longer in flight are skipped).
    pub fn undo_renames(&mut self, undo: &[(InstId, Option<RenameUndo>)]) -> Vec<InFlight> {
        let mut squashed = Vec::with_capacity(undo.len()); // koc-lint: allow(hot-path-alloc, "recovery path; sized once per squash, not per cycle")
        for (inst, rename) in undo {
            if let Some((arch, newp, prevp)) = rename {
                self.rename.undo_rename(*arch, *newp, *prevp, self.regs);
            }
            if let Some(fl) = self.forget_inflight(*inst) {
                if O::ENABLED {
                    self.obs.event(self.cycle, Event::Squash { inst: *inst });
                }
                squashed.push(fl);
            }
        }
        squashed
    }
}

/// A commit engine: owns retirement order, recovery strategy and the
/// reclamation of renamed registers. Driven by the pipeline shell through
/// the hooks below, in pipeline-stage order.
///
/// `O` is the run's observer type; engines implement the trait for every
/// `O: Observer` so the same engine code serves observed and unobserved
/// runs (the default, [`NullObserver`], compiles all reporting away).
pub trait CommitEngine<O: Observer = NullObserver> {
    /// Short engine name, used in diagnostics.
    fn name(&self) -> &'static str;

    /// Whether the engine holds no uncommitted work (end-of-run condition).
    fn is_empty(&self) -> bool;

    /// Number of live checkpoints the engine currently holds (0 for
    /// engines without checkpoints). Read by the per-cycle observer sample.
    fn live_checkpoints(&self) -> usize {
        0
    }

    /// Admission control for the next instruction in fetch order, called
    /// after the shell's own resource checks (queues, LSQ, registers) pass.
    /// The engine may mutate its state (e.g. take a checkpoint through
    /// `ctx.rename`/`ctx.regs`) when it accepts.
    fn reserve(
        &mut self,
        id: InstId,
        inst: &Instruction,
        ctx: &mut EngineCtx<'_, '_, O>,
    ) -> Result<(), DispatchStall>;

    /// Allocates retirement tracking for an accepted instruction and returns
    /// the checkpoint that owns it (0 for engines without checkpoints).
    fn allocate(&mut self, d: &Dispatched) -> CheckpointId;

    /// Called after the accepted instruction entered its issue queue; the
    /// checkpointed engine advances its pseudo-ROB (and may retire/classify
    /// an older entry) here.
    fn dispatched(&mut self, d: &Dispatched, ckpt: CheckpointId, ctx: &mut EngineCtx<'_, '_, O>);

    /// Frontend-side retirement work when dispatch cannot make progress
    /// (fetch drained or the issue queues are full): lets the checkpointed
    /// engine keep classifying pseudo-ROB entries. `budget` bounds the work
    /// to the fetch width. Returns the number of entries retired, so the
    /// shell can tell a dead cycle from a draining one (fast-forward).
    fn frontend_drain(&mut self, budget: usize, ctx: &mut EngineCtx<'_, '_, O>) -> usize;

    /// Per-cycle wake-up of any secondary buffer (the SLIQ), before issue
    /// selection. Returns the number of instructions re-inserted, so the
    /// shell can tell a dead cycle from a waking one (fast-forward).
    fn wake(&mut self, ctx: &mut EngineCtx<'_, '_, O>) -> usize;

    /// The earliest future cycle at which the engine has self-scheduled
    /// work (a pending SLIQ wake-up walker), or `None` if it only reacts to
    /// pipeline events. Part of the event-driven fast-forward: a stalled
    /// shell must not skip past an engine wake-up.
    fn next_wake(&self) -> Option<u64> {
        None
    }

    /// Execution of `wb.inst` completed this cycle (its result, if any, is
    /// already broadcast to the issue queues).
    fn completed(&mut self, wb: &Writeback, ctx: &mut EngineCtx<'_, '_, O>);

    /// Retires as much as the engine's commit rules allow this cycle.
    fn commit(&mut self, ctx: &mut EngineCtx<'_, '_, O>);

    /// Recovers from a mispredicted branch that resolved at write-back. The
    /// engine squashes younger work, restores rename state and rewinds fetch
    /// (through `ctx`); the shell applies the redirect penalty afterwards.
    fn recover_branch(&mut self, branch: InstId, ctx: &mut EngineCtx<'_, '_, O>);

    /// Delivers an exception raised by `inst` at completion. Returns `true`
    /// if the excepting instruction itself was squashed (it will re-execute
    /// from an engine-internal recovery point), `false` if it survives and
    /// completes normally.
    fn recover_exception(&mut self, inst: InstId, ctx: &mut EngineCtx<'_, '_, O>) -> bool;

    /// End-of-run statistics owned by the engine (SLIQ counters and the
    /// like).
    fn finalize(&mut self, stats: &mut SimStats);
}

/// Builds the engine a [`CommitConfig`] describes.
///
/// This is the only place that maps configuration variants to engine types;
/// the pipeline shell never matches on the variant.
pub fn from_config<O: Observer>(commit: &CommitConfig) -> Box<dyn CommitEngine<O>> {
    match *commit {
        CommitConfig::InOrderRob { rob_size } => Box::new(InOrderEngine::new(rob_size)),
        CommitConfig::Checkpointed {
            checkpoint_entries,
            pseudo_rob_size,
            sliq,
            policy,
        } => Box::new(CheckpointedEngine::new(
            checkpoint_entries,
            pseudo_rob_size,
            sliq,
            policy,
        )),
    }
}
