//! Processor configuration (Table 1) and the commit-engine variants.

use koc_core::{CheckpointPolicy, SliqConfig};
use koc_mem::MemoryConfig;
use serde::{Deserialize, Serialize};

/// Which branch predictor the front end uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchPredictorKind {
    /// The Table 1 predictor: 16K-entry gshare.
    Gshare16k,
    /// A perfect predictor (limit studies).
    Perfect,
}

/// How destination registers are backed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegisterModel {
    /// Conventional renaming: a physical register is allocated at rename and
    /// the pool size bounds the number of in-flight definitions.
    Conventional {
        /// Number of physical registers (4096 in Table 1, "pseudo-perfect").
        phys_regs: usize,
    },
    /// Ephemeral / virtual registers (Figure 14): rename only needs a virtual
    /// tag; a physical register is occupied from write-back until the
    /// superseding definition's checkpoint commits.
    Virtual {
        /// Number of virtual tags.
        virtual_tags: usize,
        /// Number of physical registers.
        phys_regs: usize,
    },
}

impl RegisterModel {
    /// The size of the underlying physical register pool used for renaming
    /// bookkeeping.
    pub fn rename_pool_size(&self) -> usize {
        match *self {
            RegisterModel::Conventional { phys_regs } => phys_regs,
            // Virtual tags are what rename consumes; the rename pool must be
            // able to name every in-flight definition.
            RegisterModel::Virtual { virtual_tags, .. } => virtual_tags,
        }
    }
}

/// The commit engine: conventional in-order ROB commit, or the paper's
/// checkpointed out-of-order commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitConfig {
    /// Conventional in-order commit from a ROB of the given size.
    InOrderRob {
        /// Reorder-buffer entries (128–4096 in the paper's sweeps).
        rob_size: usize,
    },
    /// Checkpointed out-of-order commit (the paper's proposal).
    Checkpointed {
        /// Checkpoint-table entries (8 in the main configuration).
        checkpoint_entries: usize,
        /// Pseudo-ROB entries (32/64/128; the paper always sizes it equal to
        /// the instruction queues).
        pseudo_rob_size: usize,
        /// SLIQ configuration (512/1024/2048 entries).
        sliq: SliqConfig,
        /// Checkpoint-placement policy.
        policy: CheckpointPolicy,
    },
}

impl CommitConfig {
    /// The paper's main proposal configuration: 8 checkpoints, the given
    /// pseudo-ROB/IQ size, the given SLIQ capacity, paper policy.
    pub fn cooo(pseudo_rob_size: usize, sliq_entries: usize) -> Self {
        CommitConfig::Checkpointed {
            checkpoint_entries: 8,
            pseudo_rob_size,
            sliq: SliqConfig::paper(sliq_entries),
            policy: CheckpointPolicy::paper(),
        }
    }

    /// Whether this is the checkpointed (out-of-order commit) engine.
    pub fn is_checkpointed(&self) -> bool {
        matches!(self, CommitConfig::Checkpointed { .. })
    }
}

/// Full processor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessorConfig {
    /// Instructions fetched/decoded/renamed per cycle (4 in Table 1).
    pub fetch_width: usize,
    /// Instructions issued to functional units per cycle (4 in Table 1).
    pub issue_width: usize,
    /// Instructions committed per cycle in the baseline ROB (4 in Table 1).
    pub commit_width: usize,
    /// Branch misprediction redirect penalty in cycles (10 in Table 1).
    pub mispredict_penalty: u32,
    /// Integer ALU units (4).
    pub int_alu_units: usize,
    /// Integer multiply/divide units (2).
    pub int_mul_units: usize,
    /// Floating-point units (4).
    pub fp_units: usize,
    /// Memory ports (2).
    pub mem_ports: usize,
    /// Entries in each general-purpose instruction queue (integer and FP).
    pub iq_size: usize,
    /// Load/store queue entries (4096, pseudo-perfect).
    pub lsq_size: usize,
    /// Register model (4096 conventional physical registers in Table 1).
    pub registers: RegisterModel,
    /// Branch predictor.
    pub predictor: BranchPredictorKind,
    /// Memory hierarchy.
    pub memory: MemoryConfig,
    /// Commit engine.
    pub commit: CommitConfig,
    /// Event-driven fast-forward: when every stage is provably stalled on
    /// the memory backend (or an engine wake-up), jump straight to the next
    /// scheduled event instead of ticking through the dead cycles. Cycle
    /// counts and statistics are bit-identical with the flag off — only
    /// wall-clock changes — which `tests/determinism.rs` pins down.
    pub fast_forward: bool,
}

impl ProcessorConfig {
    /// The Table 1 baseline: a conventional processor with `window` ROB and
    /// instruction-queue entries and the given main-memory latency.
    ///
    /// The paper's baseline scales the ROB and both instruction queues
    /// together ("other resources have been scaled", Figure 1), keeping the
    /// LSQ and physical registers at 4096.
    pub fn baseline(window: usize, memory_latency: u32) -> Self {
        ProcessorConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            mispredict_penalty: 10,
            int_alu_units: 4,
            int_mul_units: 2,
            fp_units: 4,
            mem_ports: 2,
            iq_size: window,
            lsq_size: 4096,
            registers: RegisterModel::Conventional { phys_regs: 4096 },
            predictor: BranchPredictorKind::Gshare16k,
            memory: MemoryConfig::table1(memory_latency),
            commit: CommitConfig::InOrderRob { rob_size: window },
            fast_forward: true,
        }
    }

    /// The Table 1 baseline with a perfect L2 (Figure 1's first bars).
    pub fn baseline_perfect_l2(window: usize) -> Self {
        ProcessorConfig {
            memory: MemoryConfig::table1_perfect_l2(),
            ..Self::baseline(window, 0)
        }
    }

    /// The paper's proposed machine: out-of-order commit with 8 checkpoints,
    /// `iq_size`-entry pseudo-ROB and instruction queues, and a SLIQ with
    /// `sliq_entries` entries.
    pub fn cooo(iq_size: usize, sliq_entries: usize, memory_latency: u32) -> Self {
        ProcessorConfig {
            iq_size,
            commit: CommitConfig::cooo(iq_size, sliq_entries),
            ..Self::baseline(iq_size, memory_latency)
        }
    }

    /// The Table 1 parameters exactly as printed (4096-entry everything,
    /// 1000-cycle memory): the paper's headline baseline.
    pub fn table1() -> Self {
        Self::baseline(4096, 1000)
    }

    /// Overrides the number of checkpoint-table entries (Figure 13).
    ///
    /// # Panics
    /// Panics if the commit engine is not checkpointed.
    pub fn with_checkpoints(mut self, entries: usize) -> Self {
        match &mut self.commit {
            CommitConfig::Checkpointed {
                checkpoint_entries, ..
            } => *checkpoint_entries = entries,
            CommitConfig::InOrderRob { .. } => {
                panic!("checkpoint count applies to the checkpointed engine") // koc-lint: allow(panic, "setter contract: applies only to the checkpointed engine")
            }
        }
        self
    }

    /// Overrides the SLIQ re-insertion delay (Figure 10).
    ///
    /// # Panics
    /// Panics if the commit engine is not checkpointed.
    pub fn with_reinsert_delay(mut self, delay: u32) -> Self {
        match &mut self.commit {
            CommitConfig::Checkpointed { sliq, .. } => sliq.reinsert_delay = delay,
            CommitConfig::InOrderRob { .. } => {
                panic!("re-insertion delay applies to the checkpointed engine") // koc-lint: allow(panic, "setter contract: applies only to the checkpointed engine")
            }
        }
        self
    }

    /// Overrides the register model (Figures 13 and 14).
    pub fn with_registers(mut self, registers: RegisterModel) -> Self {
        self.registers = registers;
        self
    }

    /// Overrides the branch predictor.
    pub fn with_predictor(mut self, predictor: BranchPredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Enables or disables the event-driven fast-forward (on by default; see
    /// [`ProcessorConfig::fast_forward`]).
    pub fn with_fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Overrides the memory latency, keeping the rest of the hierarchy.
    pub fn with_memory_latency(mut self, latency: u32) -> Self {
        self.memory = self.memory.with_memory_latency(latency);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err("pipeline widths must be non-zero".into());
        }
        if self.iq_size == 0 {
            return Err("instruction queues must have at least one entry".into());
        }
        if self.lsq_size == 0 {
            return Err("load/store queue must have at least one entry".into());
        }
        if self.registers.rename_pool_size() < 64 {
            return Err("register pool must cover at least the 64 logical registers".into());
        }
        if self.registers.rename_pool_size() > 65_535 {
            // The sampling structures pack register ids into 16 bits and
            // reserve u16::MAX as a sentinel; the paper's "pseudo-perfect"
            // pool is 4096, so this is far above any modelled configuration.
            return Err("register pool is limited to 65535 registers".into());
        }
        if let CommitConfig::Checkpointed {
            checkpoint_entries,
            pseudo_rob_size,
            sliq,
            ..
        } = &self.commit
        {
            if *checkpoint_entries == 0 {
                return Err("checkpoint table must have at least one entry".into());
            }
            if *pseudo_rob_size == 0 {
                return Err("pseudo-ROB must have at least one entry".into());
            }
            if sliq.capacity == 0 || sliq.wake_width == 0 {
                return Err("SLIQ capacity and wake width must be non-zero".into());
            }
        }
        if let CommitConfig::InOrderRob { rob_size } = &self.commit {
            if *rob_size == 0 {
                return Err("reorder buffer must have at least one entry".into());
            }
        }
        Ok(())
    }
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let c = ProcessorConfig::table1();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.mispredict_penalty, 10);
        assert_eq!(c.int_alu_units, 4);
        assert_eq!(c.int_mul_units, 2);
        assert_eq!(c.fp_units, 4);
        assert_eq!(c.mem_ports, 2);
        assert_eq!(c.iq_size, 4096);
        assert_eq!(c.lsq_size, 4096);
        assert_eq!(c.registers, RegisterModel::Conventional { phys_regs: 4096 });
        assert_eq!(c.memory.memory_latency, 1000);
        assert_eq!(c.commit, CommitConfig::InOrderRob { rob_size: 4096 });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cooo_constructor_uses_eight_checkpoints_and_paper_policy() {
        let c = ProcessorConfig::cooo(128, 2048, 1000);
        match c.commit {
            CommitConfig::Checkpointed {
                checkpoint_entries,
                pseudo_rob_size,
                sliq,
                policy,
            } => {
                assert_eq!(checkpoint_entries, 8);
                assert_eq!(pseudo_rob_size, 128);
                assert_eq!(sliq.capacity, 2048);
                assert_eq!(sliq.reinsert_delay, 4);
                assert_eq!(policy, CheckpointPolicy::paper());
            }
            _ => panic!("expected checkpointed commit"),
        }
        assert_eq!(c.iq_size, 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_overrides_apply() {
        let c = ProcessorConfig::cooo(64, 1024, 500)
            .with_checkpoints(32)
            .with_reinsert_delay(12);
        match c.commit {
            CommitConfig::Checkpointed {
                checkpoint_entries,
                sliq,
                ..
            } => {
                assert_eq!(checkpoint_entries, 32);
                assert_eq!(sliq.reinsert_delay, 12);
            }
            _ => unreachable!(),
        }
        let v = c.with_registers(RegisterModel::Virtual {
            virtual_tags: 1024,
            phys_regs: 256,
        });
        assert_eq!(v.registers.rename_pool_size(), 1024);
    }

    #[test]
    #[should_panic(expected = "checkpointed engine")]
    fn checkpoint_override_on_baseline_panics() {
        let _ = ProcessorConfig::baseline(128, 1000).with_checkpoints(8);
    }

    #[test]
    fn perfect_l2_baseline_has_perfect_memory() {
        let c = ProcessorConfig::baseline_perfect_l2(2048);
        assert!(c.memory.perfect_l2);
    }

    #[test]
    fn rename_pool_follows_the_register_model() {
        // Conventional renaming consumes physical registers...
        assert_eq!(
            RegisterModel::Conventional { phys_regs: 4096 }.rename_pool_size(),
            4096
        );
        assert_eq!(
            RegisterModel::Conventional { phys_regs: 64 }.rename_pool_size(),
            64
        );
        // ...while the ephemeral/virtual scheme renames onto virtual tags;
        // the physical count only bounds post-write-back occupancy.
        assert_eq!(
            RegisterModel::Virtual {
                virtual_tags: 1024,
                phys_regs: 256
            }
            .rename_pool_size(),
            1024
        );
        assert_eq!(
            RegisterModel::Virtual {
                virtual_tags: 512,
                phys_regs: 4096
            }
            .rename_pool_size(),
            512
        );
    }

    #[test]
    fn commit_config_cooo_defaults_match_table1() {
        // The paper's main configuration: 8 checkpoints, pseudo-ROB sized
        // like the queues, SLIQ at the requested capacity, paper policy.
        let c = CommitConfig::cooo(128, 2048);
        assert!(c.is_checkpointed());
        match c {
            CommitConfig::Checkpointed {
                checkpoint_entries,
                pseudo_rob_size,
                sliq,
                policy,
            } => {
                assert_eq!(checkpoint_entries, 8, "Table 1: 8 checkpoints");
                assert_eq!(pseudo_rob_size, 128);
                assert_eq!(sliq, SliqConfig::paper(2048));
                assert_eq!(policy, CheckpointPolicy::paper());
            }
            CommitConfig::InOrderRob { .. } => unreachable!(),
        }
        assert!(!CommitConfig::InOrderRob { rob_size: 128 }.is_checkpointed());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ProcessorConfig::table1();
        c.iq_size = 0;
        assert!(c.validate().is_err());
        let mut c = ProcessorConfig::table1();
        c.registers = RegisterModel::Conventional { phys_regs: 32 };
        assert!(c.validate().is_err());
    }
}
