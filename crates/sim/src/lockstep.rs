//! Decode-once, simulate-many: the lockstep sweep executor.
//!
//! A parameter sweep runs the *same* workload under N processor
//! configurations. The per-config fan-out pays N× for source generation
//! and keeps N full ingestion pipelines alive across rayon workers; this
//! module instead forks one fetch stream ([`koc_isa::StreamFork`]) into N
//! per-lane readers and drives N [`Processor`]s round-robin on one thread:
//!
//! ```text
//!   source ──decode once──▶ StreamFork ──lane 0──▶ Processor(config 0)
//!                           (shared buf) ──lane 1──▶ Processor(config 1)
//!                            frontier =   …
//!                            min(lanes)  ──lane N──▶ Processor(config N)
//! ```
//!
//! Lanes advance in bounded fetch chunks: each scheduling round moves every
//! live lane until its replay window has pulled `chunk` more instructions
//! than the previous round's target ([`Processor::advance_until`]). The
//! shared buffer releases below the minimum lane position (the fork
//! frontier), so its occupancy is bounded by the fetch skew between the
//! slowest and fastest lane — O(chunk + in-flight window), never
//! O(stream). Lane state lives in parallel arrays (processors, budgets,
//! finished statistics), so the scheduler's own bookkeeping stays
//! cache-resident no matter how many lanes run.
//!
//! Two properties make lockstep safe to substitute for the fan-out:
//!
//! * **Identity** — every lane sees exactly the instruction sequence the
//!   undivided source would produce, and slicing via `advance_until` is
//!   invisible to the simulated machine, so per-lane statistics are
//!   bit-identical to solo runs (gated by `tests/lockstep.rs` at zero
//!   tolerance).
//! * **Decoupled time** — lanes keep independent cycle clocks; each lane
//!   fast-forwards through its own idle gaps to its own next event, and
//!   per-lane cycle budgets cap lanes individually. A lane that exhausts
//!   its budget or finishes simply leaves the rotation; the frontier then
//!   follows the remaining lanes.

use crate::config::ProcessorConfig;
use crate::pipeline::Processor;
use crate::stats::SimStats;
use koc_isa::{ForkMonitor, IntoInstructionSource, StreamFork};

/// Default per-round fetch chunk, in instructions. Lanes batch their
/// shared-stream reads (see [`koc_isa::StreamFork`]), so the chunk's job
/// is to balance scheduling granularity against locality: every lane
/// switch drags one processor's working set back into cache, so larger
/// chunks amortize that, while the shared buffer stays bounded by
/// chunk + the widest lane's in-flight window. 4096 measured fastest on
/// the quick suite without giving up the O(chunk) memory bound.
pub const DEFAULT_CHUNK: usize = 4096;

/// A batched run of one instruction stream under N configurations in
/// lockstep — built by [`LockstepSweep::new`], driven by
/// [`run`](LockstepSweep::run).
pub struct LockstepSweep<'a> {
    /// Lane state, structure-of-arrays: `procs[i]` / `budgets[i]` /
    /// `finished[i]` describe lane `i`. A `None` processor marks a lane
    /// whose run completed (its statistics moved to `finished`).
    procs: Vec<Option<Processor<'a>>>,
    budgets: Vec<Option<u64>>,
    finished: Vec<Option<SimStats>>,
    chunk: usize,
    monitor: Option<ForkMonitor<'a>>,
}

impl<'a> LockstepSweep<'a> {
    /// Forks `source` once and builds one lane per configuration. All
    /// allocation happens here; the scheduling loop is allocation-free.
    pub fn new(configs: &[ProcessorConfig], source: impl IntoInstructionSource<'a>) -> Self {
        let lanes = StreamFork::split(source, configs.len());
        let monitor = lanes.first().map(|l| l.monitor());
        let procs: Vec<Option<Processor<'a>>> = configs
            .iter()
            .zip(lanes)
            .map(|(config, lane)| Some(Processor::new(*config, lane)))
            .collect();
        let n = procs.len();
        LockstepSweep {
            procs,
            budgets: vec![None; n],
            finished: vec![None; n],
            chunk: DEFAULT_CHUNK,
            monitor,
        }
    }

    /// Applies one cycle budget to every lane (the [`crate::Session`]
    /// `cycle_budget` semantics, per lane).
    pub fn budget(mut self, budget: Option<u64>) -> Self {
        for b in &mut self.budgets {
            *b = budget;
        }
        self
    }

    /// Staggered per-lane cycle budgets.
    ///
    /// # Panics
    /// Panics if `budgets.len()` differs from the lane count.
    pub fn budgets(mut self, budgets: &[Option<u64>]) -> Self {
        assert_eq!(
            budgets.len(),
            self.budgets.len(),
            "one budget per lane required"
        );
        self.budgets.copy_from_slice(budgets);
        self
    }

    /// Overrides the per-round fetch chunk (clamped to at least 1).
    /// Smaller chunks shrink the shared buffer; larger chunks amortize
    /// scheduling. The choice cannot affect simulated results.
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// A passive handle onto the shared fork buffer (for memory
    /// reporting); `None` when there are no lanes.
    pub fn monitor(&self) -> Option<ForkMonitor<'a>> {
        self.monitor.clone()
    }

    /// Drives all lanes to completion and returns per-lane statistics in
    /// configuration order — bit-identical to running each configuration
    /// solo via [`Processor::run_capped`] with the same budget.
    pub fn run(mut self) -> Vec<SimStats> {
        let n = self.procs.len();
        let mut live = n;
        let mut target = self.chunk;
        while live > 0 {
            for i in 0..n {
                let Some(proc) = self.procs[i].as_mut() else {
                    continue;
                };
                if proc.advance_until(target, self.budgets[i]) {
                    // koc-lint: allow(panic, "the lane was just borrowed as live two lines up")
                    let done = self.procs[i].take().expect("lane vanished mid-round");
                    self.finished[i] = Some(done.into_stats());
                    live -= 1;
                }
            }
            // Lanes that outlive the stream keep draining in-flight work
            // even though their windows stop fetching; the growing target
            // never blocks them (advance_until runs to completion once the
            // source ends).
            target = target.saturating_add(self.chunk);
        }
        self.finished
            .into_iter()
            .map(|s| {
                // koc-lint: allow(panic, "the scheduling loop above fills every slot before live reaches 0")
                s.expect("lane finished without statistics")
            })
            .collect() // koc-lint: allow(hot-path-alloc, "per-sweep result collection, not the cycle loop")
    }
}

/// Convenience wrapper: fork `source` across `configs` with a uniform
/// cycle budget and return per-config statistics in input order.
pub fn run_lockstep<'a>(
    configs: &[ProcessorConfig],
    source: impl IntoInstructionSource<'a>,
    budget: Option<u64>,
) -> Vec<SimStats> {
    LockstepSweep::new(configs, source).budget(budget).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use koc_isa::Trace;
    use koc_workloads::{generate_kernel, kernels};

    fn trace(name: &str, target_len: usize) -> Trace {
        let config = match name {
            "stream_add" => kernels::stream_add(),
            _ => kernels::pointer_chase(),
        }
        .with_target_len(target_len);
        generate_kernel(name, &config)
    }

    fn grid() -> Vec<ProcessorConfig> {
        vec![
            ProcessorConfig::baseline(64, 400),
            ProcessorConfig::cooo(32, 512, 400),
            ProcessorConfig::cooo(16, 256, 400),
        ]
    }

    fn solo(config: ProcessorConfig, budget: Option<u64>) -> SimStats {
        let trace = trace("stream_add", 1_500);
        Processor::new(config, &trace).run_capped(budget)
    }

    #[test]
    fn lockstep_matches_solo_runs_bit_for_bit() {
        let trace = trace("stream_add", 1_500);
        let configs = grid();
        let batched = run_lockstep(&configs, &trace, None);
        assert_eq!(batched.len(), configs.len());
        for (config, got) in configs.iter().zip(&batched) {
            assert_eq!(*got, solo(*config, None), "lane for {config:?} drifted");
        }
    }

    #[test]
    fn per_lane_budgets_cap_lanes_individually() {
        let trace = trace("stream_add", 1_500);
        let configs = grid();
        let budgets = [Some(200), None, Some(900)];
        let batched = LockstepSweep::new(&configs, &trace).budgets(&budgets).run();
        for ((config, budget), got) in configs.iter().zip(budgets).zip(&batched) {
            assert_eq!(*got, solo(*config, budget));
        }
        assert!(batched[0].budget_exhausted);
        assert!(!batched[1].budget_exhausted);
    }

    #[test]
    fn chunk_size_cannot_change_results() {
        let trace = trace("pointer_chase", 800);
        let configs = grid();
        let coarse = LockstepSweep::new(&configs, &trace).chunk(4_096).run();
        let fine = LockstepSweep::new(&configs, &trace).chunk(16).run();
        assert_eq!(coarse, fine);
    }

    #[test]
    fn shared_buffer_tracks_lane_skew_not_stream_length() {
        let trace = trace("stream_add", 6_000);
        let configs = grid();
        let sweep = LockstepSweep::new(&configs, &trace).chunk(256);
        let monitor = sweep.monitor().expect("lanes exist");
        sweep.run();
        let peak = monitor.peak();
        assert!(
            peak < 3_000,
            "shared fork peak {peak} should be far below the 6000-instruction stream"
        );
        assert_eq!(monitor.occupancy(), 0, "drained fork releases everything");
    }

    #[test]
    fn empty_grid_returns_no_lanes() {
        let trace = trace("stream_add", 100);
        assert!(run_lockstep(&[], &trace, None).is_empty());
    }
}
