//! CommitEngine conformance: both engines are *architecturally* equivalent.
//!
//! The paper's correctness argument for out-of-order commit is that
//! retirement order is a performance mechanism, not an architectural one:
//! any trace must retire exactly the same instructions and leave the same
//! architectural register state regardless of the commit engine. These
//! tests drive both engines cycle by cycle over the same traces (straight
//! line, branchy, excepting) and compare.

use koc_isa::{ArchReg, Trace, TraceBuilder};
use koc_sim::engine::InOrderEngine;
use koc_sim::{Processor, ProcessorConfig, SimStats};

/// Runs `config` to completion stepwise, returning the stats and the shape
/// of the final architectural mapping (which registers are mapped).
fn run_stepwise(config: ProcessorConfig, trace: &Trace) -> (SimStats, Vec<bool>) {
    let mut p = Processor::new(config, trace);
    let mut guard = 0u64;
    while !p.is_done() {
        p.step();
        guard += 1;
        assert!(
            guard < 50_000_000,
            "deadlock: engine {} stopped committing",
            p.engine_name()
        );
    }
    let mapping = p.arch_mapping().iter().map(Option::is_some).collect();
    (p.stats().clone(), mapping)
}

fn straightline_trace() -> Trace {
    let mut b = TraceBuilder::named("straightline");
    let base = ArchReg::int(1);
    for i in 0..600u64 {
        let f = ArchReg::fp((i % 20) as u8);
        b.load(f, base, 0x1000_0000 + i * 256);
        b.fp_alu(ArchReg::fp(((i % 20) + 1) as u8), &[f]);
        if i % 7 == 0 {
            b.int_alu(ArchReg::int((i % 5) as u8 + 2), &[base]);
        }
    }
    b.finish()
}

fn branchy_trace() -> Trace {
    let mut b = TraceBuilder::named("branchy");
    let base = ArchReg::int(1);
    let cond = ArchReg::int(2);
    for i in 0..80u64 {
        b.int_alu(cond, &[base]);
        let taken = (i * 2654435761) % 5 < 2;
        let target = b.pc() + 48;
        b.branch_to(cond, taken, target);
        for j in 0..10u64 {
            let f = ArchReg::fp(((i + j) % 24) as u8);
            b.load(f, base, 0x4000_0000 + (i * 10 + j) * 4096);
            b.fp_alu(ArchReg::fp((((i + j) % 24) + 1) as u8 % 28), &[f]);
        }
        b.store(ArchReg::fp(0), base, 0x8000_0000 + i * 8);
    }
    b.finish()
}

fn excepting_trace() -> Trace {
    let mut b = TraceBuilder::named("excepting");
    let base = ArchReg::int(1);
    for i in 0..150u64 {
        let f = ArchReg::fp((i % 16) as u8);
        b.load(f, base, 0x1000_0000 + i * 512);
        b.fp_alu(ArchReg::fp(((i % 16) + 1) as u8), &[f]);
    }
    b.excepting_op(ArchReg::int(3), &[base]);
    for i in 0..150u64 {
        let f = ArchReg::fp((i % 16) as u8);
        b.load(f, base, 0x2000_0000 + i * 512);
        b.fp_alu(ArchReg::fp(((i % 16) + 1) as u8), &[f]);
    }
    b.finish()
}

fn assert_engines_agree(trace: &Trace, label: &str) {
    let (rob, rob_map) = run_stepwise(ProcessorConfig::baseline(128, 300), trace);
    let (cooo, cooo_map) = run_stepwise(ProcessorConfig::cooo(64, 1024, 300), trace);

    assert_eq!(
        rob.committed_instructions as usize,
        trace.len(),
        "{label}: the baseline must retire the whole trace"
    );
    assert_eq!(
        rob.committed_instructions, cooo.committed_instructions,
        "{label}: both engines must retire the same instruction count"
    );
    assert_eq!(
        rob_map, cooo_map,
        "{label}: both engines must leave the same architectural register mapping shape"
    );
}

#[test]
fn engines_agree_on_straightline_code() {
    assert_engines_agree(&straightline_trace(), "straightline");
}

#[test]
fn engines_agree_under_branch_mispredictions() {
    assert_engines_agree(&branchy_trace(), "branchy");
}

#[test]
fn engines_agree_across_exceptions() {
    assert_engines_agree(&excepting_trace(), "excepting");
}

#[test]
fn engines_agree_on_every_suite_workload() {
    for w in koc_workloads::Suite::paper().generate(2_000) {
        assert_engines_agree(&w.trace, &w.name);
    }
}

#[test]
fn a_caller_supplied_engine_drives_the_same_pipeline() {
    // The extension point: hand the shell an engine instance directly,
    // without going through `CommitConfig`. A third engine implementation
    // plugs in exactly like this, with no pipeline edits.
    let trace = straightline_trace();
    let config = ProcessorConfig::baseline(128, 300);
    let stats = Processor::with_engine(config, &trace, Box::new(InOrderEngine::new(128))).run();
    assert_eq!(stats.committed_instructions as usize, trace.len());
}

#[test]
fn mapped_registers_match_the_trace_writers() {
    // The mapping shape is not vacuous: exactly the architectural registers
    // the trace writes are mapped at the end of the run.
    let trace = straightline_trace();
    let (_, map) = run_stepwise(ProcessorConfig::cooo(64, 1024, 300), &trace);
    let mut written = vec![false; map.len()];
    for inst in trace.iter() {
        if let Some(d) = inst.dest {
            written[d.flat_index()] = true;
        }
    }
    assert_eq!(
        map, written,
        "mapped registers must be exactly the written registers"
    );
}
