//! Property-based tests for the branch predictors.

use koc_frontend::{BranchPredictor, BranchStats, GsharePredictor, PerfectPredictor};
use proptest::prelude::*;

proptest! {
    /// The perfect predictor never mispredicts any outcome stream.
    #[test]
    fn perfect_predictor_is_perfect(outcomes in proptest::collection::vec(any::<bool>(), 1..500)) {
        let mut p = PerfectPredictor::new();
        let mut stats = BranchStats::default();
        for taken in outcomes {
            prop_assert!(p.predict_and_train(0x100, taken, &mut stats));
        }
        prop_assert_eq!(stats.mispredicted, 0);
    }

    /// Gshare statistics are consistent: mispredictions never exceed
    /// predictions and the rate is a valid probability.
    #[test]
    fn gshare_stats_are_consistent(
        pcs in proptest::collection::vec(0u64..4096, 1..500),
        outcomes in proptest::collection::vec(any::<bool>(), 1..500),
    ) {
        let mut p = GsharePredictor::new(1024);
        let mut stats = BranchStats::default();
        for (pc, taken) in pcs.iter().zip(outcomes.iter()) {
            p.predict_and_train(pc * 4, *taken, &mut stats);
        }
        prop_assert!(stats.mispredicted <= stats.predicted);
        let rate = stats.misprediction_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }

    /// A branch with a constant outcome is eventually always predicted
    /// correctly by gshare, regardless of its address.
    #[test]
    fn gshare_learns_constant_branches(pc in 0u64..1u64 << 20, taken in any::<bool>()) {
        let mut p = GsharePredictor::table1();
        let mut warmup = BranchStats::default();
        for _ in 0..8 {
            p.predict_and_train(pc, taken, &mut warmup);
        }
        let mut stats = BranchStats::default();
        for _ in 0..64 {
            p.predict_and_train(pc, taken, &mut stats);
        }
        prop_assert_eq!(stats.mispredicted, 0);
    }
}
