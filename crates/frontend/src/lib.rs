//! # koc-frontend
//!
//! Branch prediction for the *Out-of-Order Commit Processors* reproduction.
//!
//! Table 1 of the paper specifies a 16K-entry gshare predictor with a
//! 10-cycle misprediction penalty. This crate provides:
//!
//! * [`GsharePredictor`] — the Table 1 predictor (16K two-bit counters,
//!   global history XOR pc),
//! * [`PerfectPredictor`] — used for limit studies,
//! * [`StaticTakenPredictor`] — a pessimistic baseline used in tests,
//! * the [`BranchPredictor`] trait that the fetch stage of `koc-sim` drives.
//!
//! ```
//! use koc_frontend::{BranchPredictor, GsharePredictor};
//!
//! let mut p = GsharePredictor::table1();
//! // A strongly biased branch is learnt after a couple of occurrences.
//! for _ in 0..4 { p.update(0x40, true); }
//! assert!(p.predict(0x40));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gshare;
pub mod predictor;

pub use gshare::GsharePredictor;
pub use predictor::{BranchPredictor, BranchStats, PerfectPredictor, StaticTakenPredictor};
