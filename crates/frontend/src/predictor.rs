//! The branch-predictor interface and trivial reference predictors.

use serde::{Deserialize, Serialize};

/// A conditional-branch direction predictor.
///
/// The fetch stage calls [`predict`](BranchPredictor::predict) when it
/// encounters a branch and [`update`](BranchPredictor::update) when the
/// branch resolves (the paper's machine updates at resolution time, which is
/// also when mispredictions are discovered).
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains the predictor with the resolved direction of the branch at `pc`.
    fn update(&mut self, pc: u64, taken: bool);

    /// Convenience: predict, compare against the actual outcome, train, and
    /// record the result in `stats`. Returns `true` if the prediction was
    /// correct.
    fn predict_and_train(&mut self, pc: u64, taken: bool, stats: &mut BranchStats) -> bool {
        let predicted = self.predict(pc);
        let correct = predicted == taken;
        self.update(pc, taken);
        stats.record(correct);
        correct
    }
}

/// Aggregate branch-prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Number of predicted conditional branches.
    pub predicted: u64,
    /// Number of mispredicted conditional branches.
    pub mispredicted: u64,
}

impl BranchStats {
    /// Records one prediction outcome.
    pub fn record(&mut self, correct: bool) {
        self.predicted += 1;
        if !correct {
            self.mispredicted += 1;
        }
    }

    /// Misprediction rate in [0, 1].
    pub fn misprediction_rate(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.predicted as f64
        }
    }
}

/// A predictor that is always right (limit studies, Figure 1 style).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectPredictor {
    next_outcome: bool,
}

impl PerfectPredictor {
    /// Creates a perfect predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Supplies the oracle outcome for the next [`predict`](BranchPredictor::predict) call.
    pub fn set_oracle(&mut self, taken: bool) {
        self.next_outcome = taken;
    }
}

impl BranchPredictor for PerfectPredictor {
    fn predict(&mut self, _pc: u64) -> bool {
        self.next_outcome
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn predict_and_train(&mut self, _pc: u64, taken: bool, stats: &mut BranchStats) -> bool {
        stats.record(true);
        let _ = taken;
        true
    }
}

/// A static predict-taken predictor (pessimistic reference).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticTakenPredictor;

impl StaticTakenPredictor {
    /// Creates the static predictor.
    pub fn new() -> Self {
        StaticTakenPredictor
    }
}

impl BranchPredictor for StaticTakenPredictor {
    fn predict(&mut self, _pc: u64) -> bool {
        true
    }
    fn update(&mut self, _pc: u64, _taken: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictor_never_mispredicts() {
        let mut p = PerfectPredictor::new();
        let mut stats = BranchStats::default();
        for i in 0..100 {
            assert!(p.predict_and_train(0x40, i % 3 == 0, &mut stats));
        }
        assert_eq!(stats.mispredicted, 0);
        assert_eq!(stats.predicted, 100);
        assert_eq!(stats.misprediction_rate(), 0.0);
    }

    #[test]
    fn static_taken_mispredicts_not_taken_branches() {
        let mut p = StaticTakenPredictor::new();
        let mut stats = BranchStats::default();
        assert!(p.predict_and_train(0x40, true, &mut stats));
        assert!(!p.predict_and_train(0x40, false, &mut stats));
        assert_eq!(stats.mispredicted, 1);
        assert!((stats.misprediction_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_rate_is_zero_with_no_branches() {
        assert_eq!(BranchStats::default().misprediction_rate(), 0.0);
    }
}
