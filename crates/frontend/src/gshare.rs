//! The 16K-entry gshare predictor from Table 1.

use crate::predictor::BranchPredictor;

/// A gshare predictor: a table of 2-bit saturating counters indexed by the
/// XOR of the branch pc and the global history register.
///
/// Table 1 specifies a "16K history gshare"; we use 16K counters and a
/// 14-bit global history, the conventional reading of that configuration.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    counters: Vec<u8>,
    history: u64,
    history_bits: u32,
}

impl GsharePredictor {
    /// Creates a gshare predictor with `entries` two-bit counters
    /// (`entries` must be a power of two).
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "gshare entries must be a power of two"
        );
        GsharePredictor {
            counters: vec![2; entries], // weakly taken
            history: 0,
            history_bits: entries.trailing_zeros(),
        }
    }

    /// The Table 1 configuration: 16K entries.
    pub fn table1() -> Self {
        GsharePredictor::new(16 * 1024)
    }

    /// Number of counters in the prediction table.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (self.counters.len() - 1) as u64;
        (((pc >> 2) ^ self.history) & mask) as usize
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict(&mut self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | taken as u64) & mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::BranchStats;

    #[test]
    fn table1_has_16k_entries() {
        assert_eq!(GsharePredictor::table1().entries(), 16384);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = GsharePredictor::new(1000);
    }

    #[test]
    fn learns_a_strongly_biased_branch() {
        let mut p = GsharePredictor::new(1024);
        let mut stats = BranchStats::default();
        for _ in 0..1000 {
            p.predict_and_train(0x1234, true, &mut stats);
        }
        // After warm-up the loop branch is essentially always predicted.
        assert!(
            stats.misprediction_rate() < 0.01,
            "rate = {}",
            stats.misprediction_rate()
        );
    }

    #[test]
    fn learns_a_loop_exit_pattern_poorly_but_bounded() {
        // Taken 63 times then not taken once, repeatedly: classic loop branch.
        let mut p = GsharePredictor::table1();
        let mut stats = BranchStats::default();
        for _ in 0..200 {
            for i in 0..64 {
                p.predict_and_train(0x40, i != 63, &mut stats);
            }
        }
        // Mispredicts about once per loop exit at worst.
        assert!(
            stats.misprediction_rate() < 0.05,
            "rate = {}",
            stats.misprediction_rate()
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut p = GsharePredictor::table1();
        let mut stats = BranchStats::default();
        for _ in 0..20_000 {
            let taken = rng.random_bool(0.5);
            p.predict_and_train(0x80, taken, &mut stats);
        }
        assert!(
            stats.misprediction_rate() > 0.3,
            "rate = {}",
            stats.misprediction_rate()
        );
    }

    #[test]
    fn different_pcs_use_different_counters() {
        let p = GsharePredictor::new(4096);
        // Train pc A to taken without polluting history (single static branch
        // alternating would shift history, so just check the index function).
        let ia = p.index(0x1000);
        let ib = p.index(0x2000);
        assert_ne!(ia, ib);
    }
}
