//! Property-based tests for the cache and memory-hierarchy model.

use koc_mem::{Cache, CacheConfig, MemLevel, MemoryConfig, MemoryHierarchy, TimedAccess};
use proptest::prelude::*;

proptest! {
    /// An LRU cache always hits on an address that was just accessed.
    #[test]
    fn immediate_reuse_always_hits(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::table1_l1());
        for a in addrs {
            cache.access(a);
            prop_assert!(cache.contains(a));
            prop_assert!(cache.access(a).is_hit());
        }
    }

    /// Hits plus misses always equals the number of accesses.
    #[test]
    fn hit_miss_accounting(addrs in proptest::collection::vec(0u64..1u64 << 24, 1..500)) {
        let mut cache = Cache::new(CacheConfig::table1_l2());
        for a in &addrs {
            cache.access(*a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        prop_assert!(cache.miss_ratio() >= 0.0 && cache.miss_ratio() <= 1.0);
    }

    /// A working set that fits in the cache never misses after the first pass.
    #[test]
    fn resident_working_set_stops_missing(lines in 1u64..256) {
        let mut cache = Cache::new(CacheConfig::table1_l1());
        // 256 lines of 32 bytes = 8 KB, always within the 32 KB capacity.
        for pass in 0..3 {
            for i in 0..lines {
                let outcome = cache.access(i * 32);
                if pass > 0 {
                    prop_assert!(outcome.is_hit(), "pass {pass}, line {i}");
                }
            }
        }
    }

    /// The hierarchy's reported latency always matches the level that served
    /// the access, and levels only get slower.
    #[test]
    fn latency_matches_level(addrs in proptest::collection::vec(0u64..1u64 << 30, 1..300), latency in 50u32..2000) {
        let config = MemoryConfig::table1(latency);
        let mut mem = MemoryHierarchy::new(config);
        for a in addrs {
            let r = mem.access_data(a, false);
            let expected = match r.level {
                MemLevel::L1 => config.dl1.latency,
                MemLevel::L2 => config.dl1.latency + config.l2.latency,
                MemLevel::Memory => config.dl1.latency + config.l2.latency + latency,
            };
            prop_assert_eq!(r.latency, expected);
        }
        let s = mem.stats();
        prop_assert_eq!(s.dl1_hits + s.dl1_misses, s.data_accesses);
    }

    /// `would_miss_l2` is a sound predictor of the next access's level.
    #[test]
    fn would_miss_l2_is_consistent(addrs in proptest::collection::vec(0u64..1u64 << 26, 1..200)) {
        let mut mem = MemoryHierarchy::new(MemoryConfig::table1(500));
        for a in addrs {
            let predicted_miss = mem.would_miss_l2(a);
            let r = mem.access_data(a, false);
            prop_assert_eq!(predicted_miss, r.level == MemLevel::Memory);
        }
    }

    /// Filling a set up to its associativity keeps every filled line
    /// resident: the next access to any of them is a hit.
    #[test]
    fn filling_a_set_within_associativity_then_all_hit(
        ways in 1usize..8,
        set_count_log2 in 1u32..6,
        line_log2 in 5u32..8,
    ) {
        let line = 1u64 << line_log2; // 32 / 64 / 128-byte lines
        let sets = 1u64 << set_count_log2;
        let mut cache = Cache::new(CacheConfig::new(sets * ways as u64 * line, ways, line, 1));
        // Fill one set exactly to capacity (stride = sets * line keeps the
        // same set index while changing the tag).
        let set_stride = sets * line;
        for i in 0..ways as u64 {
            prop_assert!(!cache.access(i * set_stride).is_hit(), "first touch misses");
        }
        for i in 0..ways as u64 {
            prop_assert!(cache.contains(i * set_stride), "line {i} must stay resident");
            prop_assert!(cache.access(i * set_stride).is_hit(), "fill -> hit");
        }
    }

    /// True-LRU eviction order: after any access sequence into one set, the
    /// cache holds exactly the `ways` most-recently-used distinct lines, in
    /// agreement with a reference recency list.
    #[test]
    fn lru_matches_a_reference_recency_list(
        ways in 1usize..5,
        refs in proptest::collection::vec(0u64..12, 1..80),
    ) {
        let sets = 4u64;
        let line = 64u64;
        let mut cache = Cache::new(CacheConfig::new(sets * ways as u64 * line, ways, line, 1));
        // All accesses target set 0; `refs` picks among 12 distinct tags.
        let mut recency: Vec<u64> = Vec::new(); // most recent first
        for &tag in &refs {
            cache.access(tag * sets * line);
            recency.retain(|&t| t != tag);
            recency.insert(0, tag);
        }
        for (i, &tag) in recency.iter().enumerate() {
            prop_assert_eq!(
                cache.contains(tag * sets * line),
                i < ways,
                "tag {} at recency position {} with {} ways", tag, i, ways
            );
        }
    }

    /// Under `perfect_l2`, no data access ever reaches main memory, no
    /// matter the access pattern, and the timed path agrees.
    #[test]
    fn perfect_l2_never_misses(addrs in proptest::collection::vec(0u64..1u64 << 40, 1..300)) {
        let mut mem = MemoryHierarchy::new(MemoryConfig::table1_perfect_l2());
        let mut timed = MemoryHierarchy::new(MemoryConfig::table1_perfect_l2());
        for (i, a) in addrs.iter().enumerate() {
            prop_assert!(!mem.would_miss_l2(*a));
            let r = mem.access_data(*a, false);
            prop_assert_ne!(r.level, MemLevel::Memory);
            prop_assert!(r.latency <= 12);
            match timed.access_data_timed(*a, i as u64, i as u64) {
                TimedAccess::Ready { level, latency } => {
                    prop_assert_eq!(level, r.level);
                    prop_assert_eq!(latency, r.latency);
                }
                TimedAccess::InFlight => prop_assert!(false, "perfect L2 never goes to memory"),
            }
        }
        prop_assert_eq!(mem.stats().l2_misses, 0);
    }
}
