//! Property-based tests for the cache and memory-hierarchy model.

use koc_mem::{Cache, CacheConfig, MemLevel, MemoryConfig, MemoryHierarchy};
use proptest::prelude::*;

proptest! {
    /// An LRU cache always hits on an address that was just accessed.
    #[test]
    fn immediate_reuse_always_hits(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::table1_l1());
        for a in addrs {
            cache.access(a);
            prop_assert!(cache.contains(a));
            prop_assert!(cache.access(a).is_hit());
        }
    }

    /// Hits plus misses always equals the number of accesses.
    #[test]
    fn hit_miss_accounting(addrs in proptest::collection::vec(0u64..1u64 << 24, 1..500)) {
        let mut cache = Cache::new(CacheConfig::table1_l2());
        for a in &addrs {
            cache.access(*a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        prop_assert!(cache.miss_ratio() >= 0.0 && cache.miss_ratio() <= 1.0);
    }

    /// A working set that fits in the cache never misses after the first pass.
    #[test]
    fn resident_working_set_stops_missing(lines in 1u64..256) {
        let mut cache = Cache::new(CacheConfig::table1_l1());
        // 256 lines of 32 bytes = 8 KB, always within the 32 KB capacity.
        for pass in 0..3 {
            for i in 0..lines {
                let outcome = cache.access(i * 32);
                if pass > 0 {
                    prop_assert!(outcome.is_hit(), "pass {pass}, line {i}");
                }
            }
        }
    }

    /// The hierarchy's reported latency always matches the level that served
    /// the access, and levels only get slower.
    #[test]
    fn latency_matches_level(addrs in proptest::collection::vec(0u64..1u64 << 30, 1..300), latency in 50u32..2000) {
        let config = MemoryConfig::table1(latency);
        let mut mem = MemoryHierarchy::new(config);
        for a in addrs {
            let r = mem.access_data(a, false);
            let expected = match r.level {
                MemLevel::L1 => config.dl1.latency,
                MemLevel::L2 => config.dl1.latency + config.l2.latency,
                MemLevel::Memory => config.dl1.latency + config.l2.latency + latency,
            };
            prop_assert_eq!(r.latency, expected);
        }
        let s = mem.stats();
        prop_assert_eq!(s.dl1_hits + s.dl1_misses, s.data_accesses);
    }

    /// `would_miss_l2` is a sound predictor of the next access's level.
    #[test]
    fn would_miss_l2_is_consistent(addrs in proptest::collection::vec(0u64..1u64 << 26, 1..200)) {
        let mut mem = MemoryHierarchy::new(MemoryConfig::table1(500));
        for a in addrs {
            let predicted_miss = mem.would_miss_l2(a);
            let r = mem.access_data(a, false);
            prop_assert_eq!(predicted_miss, r.level == MemLevel::Memory);
        }
    }
}
