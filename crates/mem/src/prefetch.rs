//! A stride prefetcher, composable over any [`MemoryBackend`].
//!
//! The prefetcher observes the *demand miss stream* (it sits below the L2,
//! like a classic L2 stream prefetcher), detects constant-stride sequences
//! with a small table of stream trackers, and issues prefetches for the
//! next lines of a confirmed stream — but only into *spare* MSHR slots
//! ([`MemoryBackend::has_spare_slot`]), so prefetching can never starve
//! demand traffic. A demand miss that finds its line already being
//! prefetched *merges* with the in-flight prefetch and completes when the
//! prefetch returns, which is where the latency hiding comes from;
//! completed prefetches additionally fill the L2 through the hierarchy.

use crate::backend::{
    Admit, BackendStats, Completion, MemReq, MemoryBackend, SelfSchedule, INTERNAL_TOKEN_BIT,
};
use koc_core::FlatMap;
use serde::{Deserialize, Serialize};

/// Prefetching configuration (a [`crate::MemoryConfig`] knob).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchConfig {
    /// No prefetching (the default; preserves the paper's figures).
    #[default]
    Off,
    /// Stride prefetching over the L2 miss stream.
    Stride {
        /// Prefetch depth: lines fetched ahead of a confirmed stream.
        degree: usize,
        /// Number of independent streams tracked.
        streams: usize,
    },
}

impl PrefetchConfig {
    /// A conservative default stride prefetcher: 4 lines ahead, 8 streams.
    pub fn stride() -> Self {
        PrefetchConfig::Stride {
            degree: 4,
            streams: 8,
        }
    }

    /// Whether prefetching is enabled.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, PrefetchConfig::Off)
    }

    /// The prefetch depth (0 when off).
    pub fn degree(&self) -> usize {
        match *self {
            PrefetchConfig::Off => 0,
            PrefetchConfig::Stride { degree, .. } => degree,
        }
    }
}

/// One tracked miss stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Line address of the most recent miss in the stream.
    last_line: u64,
    /// Detected stride in lines (may be negative).
    stride: i64,
    /// Consecutive confirmations of the stride.
    confidence: u8,
    /// LRU timestamp.
    last_used: u64,
}

/// State of one in-flight prefetch.
#[derive(Debug, Clone)]
struct InFlightPrefetch {
    /// Internal token used with the inner backend (Queued inners).
    token: u64,
    /// Completion cycle, when the inner answered [`Admit::At`].
    done_at: Option<u64>,
    /// Demand tokens that merged with this prefetch.
    merged: Vec<u64>,
    /// Whether any demand merged with this prefetch. A merged prefetch is
    /// already counted useful (and its line is already cache-allocated by
    /// the merging demand's lookup), so its completion is not surfaced as
    /// a fill — that would double-count its usefulness.
    was_merged: bool,
}

/// The stride-prefetching wrapper backend. See the module docs.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    inner: Box<dyn MemoryBackend>,
    degree: usize,
    max_streams: usize,
    line_bytes: u64,
    streams: Vec<Stream>,
    /// In-flight prefetches by line address. Point lookups only, keyed by
    /// the line number as `usize` — a flat map keeps the steady state
    /// allocation-free and, unlike `std::collections::HashMap`, can never
    /// introduce iteration-order nondeterminism.
    in_flight: FlatMap<InFlightPrefetch>,
    /// Inner internal token → line address, to translate inner completions.
    token_to_line: FlatMap<u64>,
    /// Self-scheduled completions for `Admit::At` inners.
    scheduled: SelfSchedule,
    /// Scratch buffer for `drain`, reused across cycles.
    scratch: Vec<Completion>,
    next_token: u64,
    clock: u64,
    stats: BackendStats,
}

impl StridePrefetcher {
    /// Wraps `inner` with a stride prefetcher working at `line_bytes`
    /// granularity (the L2 line size).
    ///
    /// # Panics
    /// Panics if `config` is [`PrefetchConfig::Off`], has a zero degree or
    /// stream count, or if `line_bytes` is not a non-zero power of two.
    pub fn new(inner: Box<dyn MemoryBackend>, config: PrefetchConfig, line_bytes: u64) -> Self {
        let PrefetchConfig::Stride { degree, streams } = config else {
            panic!("StridePrefetcher requires PrefetchConfig::Stride"); // koc-lint: allow(panic, "constructor contract: a stride prefetcher takes a Stride config")
        };
        assert!(
            degree > 0 && streams > 0,
            "degree and streams must be non-zero"
        );
        assert!(
            line_bytes > 0 && line_bytes.is_power_of_two(),
            "line size must be a non-zero power of two"
        );
        StridePrefetcher {
            inner,
            degree,
            max_streams: streams,
            line_bytes,
            streams: Vec::new(),
            in_flight: FlatMap::default(),
            token_to_line: FlatMap::default(),
            scheduled: SelfSchedule::default(),
            scratch: Vec::new(),
            next_token: 0,
            clock: 0,
            stats: BackendStats::default(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &dyn MemoryBackend {
        self.inner.as_ref()
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// Trains the stream table on a demand miss and returns the stream's
    /// stride if it is confirmed (two consecutive matching strides).
    fn train(&mut self, line: u64) -> Option<i64> {
        self.clock += 1;
        let clock = self.clock;
        // Find the closest tracked stream within a small window.
        let window = 64i64;
        if let Some(s) = self
            .streams
            .iter_mut()
            .min_by_key(|s| (line as i64 - s.last_line as i64).unsigned_abs())
        {
            let delta = line as i64 - s.last_line as i64;
            if delta != 0 && delta.abs() <= window {
                if delta == s.stride {
                    s.confidence = s.confidence.saturating_add(1);
                } else {
                    s.stride = delta;
                    s.confidence = 1;
                }
                s.last_line = line;
                s.last_used = clock;
                return (s.confidence >= 2).then_some(s.stride);
            }
            if delta == 0 {
                s.last_used = clock;
                return (s.confidence >= 2).then_some(s.stride);
            }
        }
        // No stream close enough: allocate (evicting the LRU entry).
        let fresh = Stream {
            last_line: line,
            stride: 0,
            confidence: 0,
            last_used: clock,
        };
        if self.streams.len() < self.max_streams {
            self.streams.push(fresh);
        } else if let Some(lru) = self.streams.iter_mut().min_by_key(|s| s.last_used) {
            *lru = fresh;
        }
        None
    }

    /// Issues up to `degree` prefetches along a confirmed stream, as long
    /// as the inner backend has spare MSHR slots.
    fn issue_prefetches(&mut self, line: u64, stride: i64, at: u64) {
        for i in 1..=self.degree {
            let Some(target) = line.checked_add_signed(stride * i as i64) else {
                break;
            };
            if self.in_flight.contains_key(target as usize) {
                continue;
            }
            if !self.inner.has_spare_slot() {
                // Nothing can free an MSHR mid-loop; stop prefetching.
                break;
            }
            let token = INTERNAL_TOKEN_BIT | self.next_token;
            self.next_token += 1;
            let req = MemReq {
                token,
                addr: target * self.line_bytes,
                is_write: false,
                is_prefetch: true,
            };
            match self.inner.request(req, at) {
                Admit::At(done) => {
                    self.stats.prefetch_issued += 1;
                    self.scheduled.push(
                        done,
                        Completion {
                            token,
                            addr: req.addr,
                            is_prefetch: true,
                            is_write: false,
                        },
                    );
                    self.in_flight.insert(
                        target as usize,
                        InFlightPrefetch {
                            token,
                            done_at: Some(done),
                            // koc-lint: allow(hot-path-indirect, "Vec::new is allocation-free; merged fills only when a demand miss merges into this in-flight prefetch")
                            merged: Vec::new(),
                            was_merged: false,
                        },
                    );
                }
                Admit::Queued => {
                    self.stats.prefetch_issued += 1;
                    self.token_to_line.insert(token as usize, target);
                    self.in_flight.insert(
                        target as usize,
                        InFlightPrefetch {
                            token,
                            done_at: None,
                            // koc-lint: allow(hot-path-indirect, "Vec::new is allocation-free; merged fills only when a demand miss merges into this in-flight prefetch")
                            merged: Vec::new(),
                            was_merged: false,
                        },
                    );
                }
                Admit::Reject => break,
            }
        }
    }
}

impl MemoryBackend for StridePrefetcher {
    fn name(&self) -> &'static str {
        "stride-prefetcher"
    }

    fn request(&mut self, req: MemReq, at: u64) -> Admit {
        if req.is_write {
            return self.inner.request(req, at);
        }
        debug_assert!(!req.is_prefetch, "prefetchers do not nest prefetches");
        let line = self.line_of(req.addr);
        let confirmed = self.train(line);
        // Merge with an in-flight prefetch of the same line, if any: the
        // demand completes when the prefetch returns.
        let admit = if let Some(pf) = self.in_flight.get_mut(line as usize) {
            if !pf.was_merged {
                // Count each prefetch useful at most once.
                self.stats.prefetch_useful += 1;
            }
            pf.was_merged = true;
            self.stats.demand_reads += 1;
            match pf.done_at {
                // Data already on its way with a known arrival: never
                // earlier than the demand itself could need it.
                Some(done) => Admit::At(done.max(at)),
                None => {
                    pf.merged.push(req.token);
                    Admit::Queued
                }
            }
        } else {
            self.inner.request(req, at)
        };
        if !matches!(admit, Admit::Reject) {
            if let Some(stride) = confirmed {
                self.issue_prefetches(line, stride, at);
            }
        }
        admit
    }

    fn tick(&mut self, now: u64) {
        self.inner.tick(now);
    }

    fn next_event(&self) -> Option<u64> {
        // The wrapper adds only its self-scheduled prefetch completions
        // (`Admit::At` inners); everything else is the inner backend's.
        match (self.inner.next_event(), self.scheduled.next_due()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn drain(&mut self, now: u64, out: &mut Vec<Completion>) {
        // One scratch buffer reused across the run: `drain` is called every
        // cycle the hierarchy has outstanding traffic.
        let mut raw = std::mem::take(&mut self.scratch);
        self.inner.drain(now, &mut raw);
        self.scheduled.drain(now, &mut raw);
        for c in raw.drain(..) {
            if c.token & INTERNAL_TOKEN_BIT == 0 {
                // A demand (or write) completion of the inner backend.
                out.push(c);
                continue;
            }
            let line = self
                .token_to_line
                .remove(c.token as usize)
                .unwrap_or_else(|| self.line_of(c.addr));
            let mut surface_fill = true;
            if let Some(pf) = self.in_flight.remove(line as usize) {
                debug_assert_eq!(pf.token, c.token);
                for demand in pf.merged {
                    out.push(Completion {
                        token: demand,
                        addr: c.addr,
                        is_prefetch: false,
                        is_write: false,
                    });
                }
                // A merged prefetch's line was already cache-allocated by
                // the merging demand's lookup, and the prefetch is already
                // counted useful: surfacing the fill would double-count.
                surface_fill = !pf.was_merged;
            }
            if surface_fill {
                // Surface the prefetch so the hierarchy can fill L2.
                out.push(c);
            }
        }
        self.scratch = raw;
    }

    fn can_accept(&self) -> bool {
        self.inner.can_accept()
    }

    fn has_spare_slot(&self) -> bool {
        self.inner.has_spare_slot()
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    fn stats(&self) -> BackendStats {
        let inner = self.inner.stats();
        BackendStats {
            // The wrapper counts merged demands; un-merged ones reached the
            // inner backend and are counted there.
            demand_reads: inner.demand_reads + self.stats.demand_reads,
            prefetch_issued: self.stats.prefetch_issued,
            prefetch_useful: self.stats.prefetch_useful,
            ..inner
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.streams.clear();
        self.in_flight.clear();
        self.token_to_line.clear();
        self.scheduled.clear();
        self.next_token = 0;
        self.clock = 0;
        self.stats = BackendStats::default();
    }

    fn clone_box(&self) -> Box<dyn MemoryBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FlatLatency;
    use crate::dram::{DramBackend, DramConfig};

    const LINE: u64 = 64;

    fn flat_pf(degree: usize) -> StridePrefetcher {
        StridePrefetcher::new(
            Box::new(FlatLatency::new(200)),
            PrefetchConfig::Stride { degree, streams: 4 },
            LINE,
        )
    }

    #[test]
    fn a_strided_stream_triggers_prefetches() {
        let mut p = flat_pf(2);
        // Three unit-stride misses confirm the stream on the third access.
        assert_eq!(p.request(MemReq::read(1, 0), 0), Admit::At(200));
        assert_eq!(p.request(MemReq::read(2, LINE), 10), Admit::At(210));
        assert_eq!(p.request(MemReq::read(3, 2 * LINE), 20), Admit::At(220));
        assert_eq!(p.stats().prefetch_issued, 2, "degree-2 ahead of line 2");
        // The next demand merges with the line-3 prefetch issued at 10.
        let a = p.request(MemReq::read(4, 3 * LINE), 30);
        assert_eq!(a, Admit::At(220), "merged with the in-flight prefetch");
        assert_eq!(p.stats().prefetch_useful, 1);
    }

    #[test]
    fn merged_demand_never_completes_in_the_past() {
        let mut p = flat_pf(2);
        p.request(MemReq::read(1, 0), 0);
        p.request(MemReq::read(2, LINE), 1);
        p.request(MemReq::read(3, 2 * LINE), 2); // prefetches lines 3, 4 at 2
        let a = p.request(MemReq::read(4, 3 * LINE), 500);
        assert_eq!(
            a,
            Admit::At(500),
            "prefetch data already home: serve at arrival"
        );
    }

    #[test]
    fn prefetch_completions_surface_for_cache_fill() {
        let mut p = flat_pf(1);
        p.request(MemReq::read(1, 0), 0);
        p.request(MemReq::read(2, LINE), 0);
        p.request(MemReq::read(3, 2 * LINE), 0); // prefetch line 3 at 0
        let mut out = Vec::new();
        p.tick(200);
        p.drain(200, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_prefetch);
        assert_eq!(out[0].addr, 3 * LINE);
        assert!(
            p.in_flight.is_empty(),
            "the in-flight table empties on drain"
        );
    }

    #[test]
    fn queued_inner_merges_translate_to_demand_completions() {
        let inner = DramBackend::new(
            DramConfig {
                mshr_entries: 8,
                banks: 1,
                row_bytes: 4096,
                act_latency: 0,
                precharge_latency: 0,
                bank_busy: 0,
            },
            100,
        );
        let mut p = StridePrefetcher::new(Box::new(inner), PrefetchConfig::stride(), LINE);
        p.request(MemReq::read(1, 0), 0);
        p.request(MemReq::read(2, LINE), 1);
        p.request(MemReq::read(3, 2 * LINE), 2); // prefetches queued at 2
        assert_eq!(p.request(MemReq::read(4, 3 * LINE), 3), Admit::Queued);
        assert_eq!(p.stats().prefetch_useful, 1);
        let mut out = Vec::new();
        for now in 0..=110 {
            p.tick(now);
            p.drain(now, &mut out);
        }
        // Demands 1-3 complete; the merged demand 4 rides its prefetch
        // (serviced at 2, done at 102); prefetch fills surface as well.
        let demand_tokens: Vec<u64> = out
            .iter()
            .filter(|c| !c.is_prefetch)
            .map(|c| c.token)
            .collect();
        assert!(
            demand_tokens.contains(&4),
            "merged demand completed: {out:?}"
        );
        assert!(out.iter().any(|c| c.is_prefetch));
    }

    #[test]
    fn prefetches_only_use_spare_mshr_slots() {
        let inner = DramBackend::new(
            DramConfig {
                mshr_entries: 2,
                banks: 1,
                row_bytes: 4096,
                act_latency: 0,
                precharge_latency: 0,
                bank_busy: 0,
            },
            1000,
        );
        let mut p = StridePrefetcher::new(
            Box::new(inner),
            PrefetchConfig::Stride {
                degree: 4,
                streams: 4,
            },
            LINE,
        );
        p.request(MemReq::read(1, 0), 0);
        p.request(MemReq::read(2, LINE), 1);
        p.request(MemReq::read(3, 2 * LINE), 2);
        // 2 MSHRs: after the second in-flight demand there is no *spare*
        // slot, so the confirmed stream cannot prefetch at all.
        assert_eq!(p.stats().prefetch_issued, 0);
        assert_eq!(p.stats().rejected, 1, "the third demand itself bounced");
    }

    #[test]
    fn irregular_misses_never_prefetch() {
        let mut p = flat_pf(4);
        for (i, line) in [0u64, 1000, 52, 9000, 321].into_iter().enumerate() {
            p.request(MemReq::read(i as u64, line * LINE), i as u64);
        }
        assert_eq!(p.stats().prefetch_issued, 0);
    }

    #[test]
    #[should_panic(expected = "PrefetchConfig::Stride")]
    fn off_config_panics() {
        let _ = StridePrefetcher::new(Box::new(FlatLatency::new(1)), PrefetchConfig::Off, 64);
    }
}
