//! Memory-hierarchy statistics counters.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`MemoryHierarchy`](crate::MemoryHierarchy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Total data-side accesses (loads + stores).
    pub data_accesses: u64,
    /// Data-side accesses that were stores.
    pub store_accesses: u64,
    /// Data L1 hits.
    pub dl1_hits: u64,
    /// Data L1 misses.
    pub dl1_misses: u64,
    /// L2 hits (data side).
    pub l2_hits: u64,
    /// L2 misses (data side) — long-latency accesses.
    pub l2_misses: u64,
    /// Instruction-side accesses.
    pub inst_accesses: u64,
    /// Cycles demand misses spent waiting for a free MSHR (each waiting
    /// request counts one per cycle; always 0 for the flat backend).
    pub mshr_full_stalls: u64,
    /// Main-memory accesses that hit an open DRAM row buffer.
    pub row_buffer_hits: u64,
    /// Main-memory accesses that opened a row in a precharged bank.
    pub row_buffer_misses: u64,
    /// Main-memory accesses that had to close a conflicting open row.
    pub row_buffer_conflicts: u64,
    /// Prefetches issued into the memory system.
    pub prefetch_issued: u64,
    /// Prefetches that were useful: a demand miss merged with the prefetch
    /// in flight, or a demand access hit a prefetched line in L2.
    pub prefetch_useful: u64,
}

impl MemoryStats {
    /// Data L1 miss ratio (0 when there were no accesses).
    pub fn dl1_miss_ratio(&self) -> f64 {
        ratio(self.dl1_misses, self.dl1_hits + self.dl1_misses)
    }

    /// L2 miss ratio relative to L2 accesses.
    pub fn l2_miss_ratio(&self) -> f64 {
        ratio(self.l2_misses, self.l2_hits + self.l2_misses)
    }

    /// Fraction of all data accesses that go all the way to memory.
    pub fn memory_access_ratio(&self) -> f64 {
        ratio(self.l2_misses, self.data_accesses)
    }

    /// Fraction of DRAM accesses that hit the open row buffer (0 when the
    /// flat backend is in use).
    pub fn row_buffer_hit_ratio(&self) -> f64 {
        ratio(
            self.row_buffer_hits,
            self.row_buffer_hits + self.row_buffer_misses + self.row_buffer_conflicts,
        )
    }

    /// Fraction of issued prefetches that proved useful.
    pub fn prefetch_accuracy(&self) -> f64 {
        ratio(self.prefetch_useful, self.prefetch_issued)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_zero_without_accesses() {
        let s = MemoryStats::default();
        assert_eq!(s.dl1_miss_ratio(), 0.0);
        assert_eq!(s.l2_miss_ratio(), 0.0);
        assert_eq!(s.memory_access_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute_fractions() {
        let s = MemoryStats {
            data_accesses: 100,
            dl1_hits: 80,
            dl1_misses: 20,
            l2_hits: 10,
            l2_misses: 10,
            ..Default::default()
        };
        assert!((s.dl1_miss_ratio() - 0.2).abs() < 1e-12);
        assert!((s.l2_miss_ratio() - 0.5).abs() < 1e-12);
        assert!((s.memory_access_ratio() - 0.1).abs() < 1e-12);
    }
}
