//! Memory-hierarchy configuration (Table 1 plus the perfect-L2 variant).

use crate::cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the whole data/instruction memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Instruction L1 cache.
    pub il1: CacheConfig,
    /// Data L1 cache.
    pub dl1: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (the paper sweeps 100 / 500 / 1000).
    pub memory_latency: u32,
    /// Number of memory (cache) ports available to the core per cycle.
    pub memory_ports: usize,
    /// When set, every L2 access hits (Figure 1's "L2 Perfect" bars).
    pub perfect_l2: bool,
}

impl MemoryConfig {
    /// The Table 1 hierarchy with the given main-memory latency.
    pub fn table1(memory_latency: u32) -> Self {
        MemoryConfig {
            il1: CacheConfig::table1_l1(),
            dl1: CacheConfig::table1_l1(),
            l2: CacheConfig::table1_l2(),
            memory_latency,
            memory_ports: 2,
            perfect_l2: false,
        }
    }

    /// The Table 1 hierarchy with a perfect L2 (never misses).
    pub fn table1_perfect_l2() -> Self {
        MemoryConfig {
            perfect_l2: true,
            ..MemoryConfig::table1(0)
        }
    }

    /// Sets the main-memory latency (builder style).
    pub fn with_memory_latency(mut self, latency: u32) -> Self {
        self.memory_latency = latency;
        self
    }

    /// The worst-case latency of a data access under this configuration.
    pub fn worst_case_latency(&self) -> u32 {
        if self.perfect_l2 {
            self.dl1.latency + self.l2.latency
        } else {
            self.dl1.latency + self.l2.latency + self.memory_latency
        }
    }
}

impl Default for MemoryConfig {
    /// The paper's headline configuration: 1000-cycle main memory.
    fn default() -> Self {
        MemoryConfig::table1(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let m = MemoryConfig::table1(1000);
        assert_eq!(m.dl1.size_bytes, 32 * 1024);
        assert_eq!(m.dl1.ways, 4);
        assert_eq!(m.dl1.line_bytes, 32);
        assert_eq!(m.dl1.latency, 2);
        assert_eq!(m.l2.size_bytes, 512 * 1024);
        assert_eq!(m.l2.line_bytes, 64);
        assert_eq!(m.l2.latency, 10);
        assert_eq!(m.memory_latency, 1000);
        assert_eq!(m.memory_ports, 2);
        assert!(!m.perfect_l2);
    }

    #[test]
    fn perfect_l2_has_no_memory_component() {
        let m = MemoryConfig::table1_perfect_l2();
        assert!(m.perfect_l2);
        assert_eq!(m.worst_case_latency(), 12);
    }

    #[test]
    fn default_is_the_1000_cycle_machine() {
        assert_eq!(MemoryConfig::default(), MemoryConfig::table1(1000));
    }

    #[test]
    fn with_memory_latency_overrides() {
        let m = MemoryConfig::table1(1000).with_memory_latency(500);
        assert_eq!(m.memory_latency, 500);
        assert_eq!(m.worst_case_latency(), 512);
    }
}
