//! Memory-hierarchy configuration (Table 1 plus the perfect-L2 variant),
//! including the timed-backend and prefetcher knobs.

use crate::cache::CacheConfig;
use crate::dram::DramConfig;
use crate::prefetch::PrefetchConfig;
use serde::{Deserialize, Serialize};

/// Which timed backend models main memory (everything beyond the L2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// A flat `memory_latency` with unlimited outstanding misses — exactly
    /// the paper's model and the default.
    #[default]
    Flat,
    /// Banked DRAM with row buffers and a finite MSHR file.
    Dram(DramConfig),
}

impl BackendKind {
    /// The DRAM configuration, defaulting when the backend is flat (used by
    /// builder knobs that upgrade a flat backend to DRAM).
    pub fn dram_or_default(self) -> DramConfig {
        match self {
            BackendKind::Flat => DramConfig::default(),
            BackendKind::Dram(d) => d,
        }
    }
}

/// Configuration of the whole data/instruction memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Instruction L1 cache.
    pub il1: CacheConfig,
    /// Data L1 cache.
    pub dl1: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (the paper sweeps 100 / 500 / 1000).
    /// With a DRAM backend this is the row-buffer-hit access time; row
    /// management adds on top.
    pub memory_latency: u32,
    /// Number of memory (cache) ports available to the core per cycle.
    pub memory_ports: usize,
    /// When set, every L2 access hits (Figure 1's "L2 Perfect" bars).
    pub perfect_l2: bool,
    /// The timed backend modelling main memory.
    pub backend: BackendKind,
    /// Prefetching into the L2 miss stream.
    pub prefetch: PrefetchConfig,
}

impl MemoryConfig {
    /// The Table 1 hierarchy with the given main-memory latency.
    pub fn table1(memory_latency: u32) -> Self {
        MemoryConfig {
            il1: CacheConfig::table1_l1(),
            dl1: CacheConfig::table1_l1(),
            l2: CacheConfig::table1_l2(),
            memory_latency,
            memory_ports: 2,
            perfect_l2: false,
            backend: BackendKind::Flat,
            prefetch: PrefetchConfig::Off,
        }
    }

    /// The Table 1 hierarchy with a perfect L2 (never misses).
    pub fn table1_perfect_l2() -> Self {
        MemoryConfig {
            perfect_l2: true,
            ..MemoryConfig::table1(0)
        }
    }

    /// Sets the main-memory latency (builder style).
    pub fn with_memory_latency(mut self, latency: u32) -> Self {
        self.memory_latency = latency;
        self
    }

    /// Selects the timed memory backend (builder style).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Switches to the banked DRAM backend with the given configuration.
    pub fn with_dram(self, dram: DramConfig) -> Self {
        self.with_backend(BackendKind::Dram(dram))
    }

    /// Sets the MSHR count, upgrading a flat backend to the default DRAM
    /// part first.
    pub fn with_mshr_entries(mut self, entries: usize) -> Self {
        self.backend = BackendKind::Dram(self.backend.dram_or_default().with_mshr_entries(entries));
        self
    }

    /// Sets the DRAM bank count, upgrading a flat backend to the default
    /// DRAM part first.
    pub fn with_dram_banks(mut self, banks: usize) -> Self {
        self.backend = BackendKind::Dram(self.backend.dram_or_default().with_banks(banks));
        self
    }

    /// Sets the per-bank row-buffer size, upgrading a flat backend to the
    /// default DRAM part first.
    pub fn with_row_buffer(mut self, bytes: u64) -> Self {
        self.backend = BackendKind::Dram(self.backend.dram_or_default().with_row_bytes(bytes));
        self
    }

    /// Sets the prefetching configuration (builder style).
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// The worst-case latency of a single data access under this
    /// configuration, excluding queueing behind other requests (used for
    /// deadlock bounds, not for timing).
    pub fn worst_case_latency(&self) -> u32 {
        if self.perfect_l2 {
            return self.dl1.latency + self.l2.latency;
        }
        let row_penalty = match self.backend {
            BackendKind::Flat => 0,
            BackendKind::Dram(d) => d.worst_row_penalty() + d.bank_busy,
        };
        self.dl1.latency + self.l2.latency + self.memory_latency + row_penalty
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if let BackendKind::Dram(d) = self.backend {
            d.validate()?;
        }
        if let crate::prefetch::PrefetchConfig::Stride { degree, streams } = self.prefetch {
            if degree == 0 || streams == 0 {
                return Err("prefetch degree and stream count must be non-zero".into());
            }
        }
        Ok(())
    }
}

impl Default for MemoryConfig {
    /// The paper's headline configuration: 1000-cycle main memory.
    fn default() -> Self {
        MemoryConfig::table1(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let m = MemoryConfig::table1(1000);
        assert_eq!(m.dl1.size_bytes, 32 * 1024);
        assert_eq!(m.dl1.ways, 4);
        assert_eq!(m.dl1.line_bytes, 32);
        assert_eq!(m.dl1.latency, 2);
        assert_eq!(m.l2.size_bytes, 512 * 1024);
        assert_eq!(m.l2.line_bytes, 64);
        assert_eq!(m.l2.latency, 10);
        assert_eq!(m.memory_latency, 1000);
        assert_eq!(m.memory_ports, 2);
        assert!(!m.perfect_l2);
    }

    #[test]
    fn perfect_l2_has_no_memory_component() {
        let m = MemoryConfig::table1_perfect_l2();
        assert!(m.perfect_l2);
        assert_eq!(m.worst_case_latency(), 12);
    }

    #[test]
    fn default_is_the_1000_cycle_machine() {
        assert_eq!(MemoryConfig::default(), MemoryConfig::table1(1000));
    }

    #[test]
    fn with_memory_latency_overrides() {
        let m = MemoryConfig::table1(1000).with_memory_latency(500);
        assert_eq!(m.memory_latency, 500);
        assert_eq!(m.worst_case_latency(), 512);
    }

    #[test]
    fn backend_defaults_to_flat_with_no_prefetch() {
        let m = MemoryConfig::table1(1000);
        assert_eq!(m.backend, BackendKind::Flat);
        assert_eq!(m.prefetch, PrefetchConfig::Off);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn mshr_knob_upgrades_a_flat_backend_to_dram() {
        let m = MemoryConfig::table1(1000).with_mshr_entries(4);
        match m.backend {
            BackendKind::Dram(d) => {
                assert_eq!(d.mshr_entries, 4);
                assert_eq!(d.banks, DramConfig::table1_like().banks);
            }
            BackendKind::Flat => panic!("expected a DRAM backend"),
        }
        // Later knobs refine the same DRAM config instead of resetting it.
        let m = m.with_dram_banks(2).with_row_buffer(8192);
        match m.backend {
            BackendKind::Dram(d) => {
                assert_eq!((d.mshr_entries, d.banks, d.row_bytes), (4, 2, 8192));
            }
            BackendKind::Flat => unreachable!(),
        }
    }

    #[test]
    fn dram_worst_case_includes_row_penalties() {
        let flat = MemoryConfig::table1(1000);
        let dram = flat.with_dram(DramConfig::table1_like());
        let d = DramConfig::table1_like();
        assert_eq!(
            dram.worst_case_latency(),
            flat.worst_case_latency() + d.act_latency + d.precharge_latency + d.bank_busy
        );
    }

    #[test]
    fn invalid_backend_configs_are_rejected() {
        let m = MemoryConfig::table1(100).with_mshr_entries(4);
        assert!(m.validate().is_ok());
        let bad = MemoryConfig::table1(100).with_dram(DramConfig {
            banks: 0,
            ..DramConfig::table1_like()
        });
        assert!(bad.validate().is_err());
        let bad_pf = MemoryConfig::table1(100).with_prefetch(PrefetchConfig::Stride {
            degree: 0,
            streams: 4,
        });
        assert!(bad_pf.validate().is_err());
    }
}
