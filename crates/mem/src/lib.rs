//! # koc-mem
//!
//! Cache and main-memory hierarchy model for the *Out-of-Order Commit
//! Processors* reproduction.
//!
//! The hierarchy follows Table 1 of the paper: split 32 KB 4-way L1 caches
//! with 32-byte lines and 2-cycle latency, a unified 512 KB 4-way L2 with
//! 64-byte lines and 10-cycle latency, and a configurable main-memory
//! latency (100 / 500 / 1000 cycles in the evaluation). A *perfect L2* mode
//! is provided for Figure 1's first bar.
//!
//! The model is a latency model: an access returns which level served it and
//! how many cycles it took; bandwidth at the core side is modelled by the
//! pipeline's two memory ports, and miss-level parallelism is unconstrained
//! (outstanding misses overlap freely), matching the paper's assumption that
//! enough in-flight instructions expose memory-level parallelism.
//!
//! ```
//! use koc_mem::{MemoryConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(MemoryConfig::table1(1000));
//! let first = mem.access_data(0x4_0000, false);
//! let second = mem.access_data(0x4_0000, false);
//! assert!(first.latency > second.latency); // second hits in L1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod stats;

pub use cache::{AccessOutcome, Cache, CacheConfig};
pub use config::MemoryConfig;
pub use hierarchy::{DataAccessResult, MemLevel, MemoryHierarchy};
pub use stats::MemoryStats;
