//! # koc-mem
//!
//! Cache and main-memory hierarchy model for the *Out-of-Order Commit
//! Processors* reproduction.
//!
//! The hierarchy follows Table 1 of the paper: split 32 KB 4-way L1 caches
//! with 32-byte lines and 2-cycle latency, a unified 512 KB 4-way L2 with
//! 64-byte lines and 10-cycle latency, and a configurable main-memory
//! latency (100 / 500 / 1000 cycles in the evaluation). A *perfect L2* mode
//! is provided for Figure 1's first bar.
//!
//! Main memory beyond the L2 is a pluggable *timed backend* behind the
//! [`MemoryBackend`] trait (mirroring the commit-engine seam in `koc-sim`):
//!
//! * [`FlatLatency`] — the default and the paper's model: a fixed
//!   `memory_latency` with unlimited outstanding misses, so memory-level
//!   parallelism is bounded only by the instruction window.
//! * [`DramBackend`] — N banks with open-row buffers (hit / miss /
//!   conflict timing), per-bank FIFO queues, and a finite MSHR file that
//!   back-pressures the core when it fills. This bounds the MLP a
//!   kilo-instruction window can actually expose.
//! * [`StridePrefetcher`] — a composable wrapper over either backend that
//!   detects strided miss streams and prefetches into spare MSHR slots.
//!
//! The backend is selected by [`MemoryConfig`] knobs (`backend`,
//! `prefetch`); the default configuration is `FlatLatency` with prefetching
//! off, which reproduces the paper's figures cycle for cycle.
//!
//! ```
//! use koc_mem::{DramConfig, MemoryConfig, MemoryHierarchy, PrefetchConfig};
//!
//! // The paper's model:
//! let mut mem = MemoryHierarchy::new(MemoryConfig::table1(1000));
//! let first = mem.access_data(0x4_0000, false);
//! let second = mem.access_data(0x4_0000, false);
//! assert!(first.latency > second.latency); // second hits in L1
//!
//! // A bandwidth-limited machine: 8 MSHRs, 4 banks, stride prefetching.
//! let limited = MemoryConfig::table1(1000)
//!     .with_dram(DramConfig::table1_like().with_mshr_entries(8).with_banks(4))
//!     .with_prefetch(PrefetchConfig::stride());
//! assert!(limited.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod prefetch;
pub mod stats;

pub use backend::{Admit, BackendStats, Completion, FlatLatency, MemReq, MemoryBackend};
pub use cache::{AccessOutcome, Cache, CacheConfig};
pub use config::{BackendKind, MemoryConfig};
pub use dram::{DramBackend, DramConfig};
pub use hierarchy::{DataAccessResult, MemLevel, MemoryHierarchy, TimedAccess};
pub use prefetch::{PrefetchConfig, StridePrefetcher};
pub use stats::MemoryStats;
