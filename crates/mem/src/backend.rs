//! The pluggable timed memory backend.
//!
//! Everything *beyond the L2* is modelled by an implementation of
//! [`MemoryBackend`]: the hierarchy hands it L2 misses (demand loads,
//! committed-store write-backs and prefetches) and consumes completions as
//! they return. The seam mirrors the `CommitEngine` trait in `koc-sim`:
//! the hierarchy drives whichever backend it is given without knowing the
//! variant.
//!
//! Three implementations ship with the crate:
//!
//! * [`FlatLatency`] — the paper's model and the default: every request
//!   completes a fixed `memory_latency` cycles after it arrives, with
//!   unlimited outstanding misses.
//! * [`crate::DramBackend`] — N banks with open-row buffers, per-bank FIFO
//!   queues and a finite MSHR file that back-pressures the core when full.
//! * [`crate::StridePrefetcher`] — a composable wrapper that detects strided
//!   miss streams and issues prefetches into spare MSHR slots of whatever
//!   backend it wraps.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tokens with this bit set are internal to a backend (prefetches) and are
/// never returned to the core as demand completions.
pub const INTERNAL_TOKEN_BIT: u64 = 1 << 63;

/// One request handed to a backend: an L2 miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemReq {
    /// Caller-chosen identifier, echoed in the matching [`Completion`].
    /// Demand tokens must not have [`INTERNAL_TOKEN_BIT`] set.
    pub token: u64,
    /// Byte address of the access (backends work at line granularity but
    /// keep the full address for bank/row decoding).
    pub addr: u64,
    /// Whether this is a write-back of a committed store (posted: it never
    /// occupies an MSHR and its completion carries no data).
    pub is_write: bool,
    /// Whether this is a prefetch issued by a wrapper backend.
    pub is_prefetch: bool,
}

impl MemReq {
    /// A demand read with the given token.
    pub fn read(token: u64, addr: u64) -> Self {
        MemReq {
            token,
            addr,
            is_write: false,
            is_prefetch: false,
        }
    }

    /// A posted write (no token: completions for writes are dropped).
    pub fn write(addr: u64) -> Self {
        MemReq {
            token: INTERNAL_TOKEN_BIT,
            addr,
            is_write: true,
            is_prefetch: false,
        }
    }
}

/// The backend's answer to [`MemoryBackend::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Accepted, and the completion cycle is already known (no queueing
    /// contention): the caller schedules the completion itself and the
    /// backend retains nothing.
    At(u64),
    /// Accepted into the backend's queues; the completion will surface from
    /// [`MemoryBackend::drain`] when the request is serviced.
    Queued,
    /// Rejected: no MSHR is free. The caller must retry on a later cycle.
    Reject,
}

/// A serviced request surfacing from [`MemoryBackend::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The token of the originating [`MemReq`].
    pub token: u64,
    /// The request's byte address (prefetch completions use it to fill L2).
    pub addr: u64,
    /// Whether the completed request was a prefetch.
    pub is_prefetch: bool,
    /// Whether the completed request was a posted write.
    pub is_write: bool,
}

/// Counters every backend maintains. Wrappers merge their own counters with
/// their inner backend's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendStats {
    /// Demand reads accepted.
    pub demand_reads: u64,
    /// Posted writes accepted.
    pub writes: u64,
    /// Demand reads rejected for want of an MSHR (one count per attempt).
    pub rejected: u64,
    /// DRAM accesses that hit the open row buffer.
    pub row_buffer_hits: u64,
    /// DRAM accesses to a closed (precharged) bank.
    pub row_buffer_misses: u64,
    /// DRAM accesses that had to close a different open row first.
    pub row_buffer_conflicts: u64,
    /// Prefetches issued to the memory system.
    pub prefetch_issued: u64,
    /// Demand misses that merged with an in-flight prefetch of the same line.
    pub prefetch_useful: u64,
    /// Peak simultaneous MSHR occupancy.
    pub mshr_high_water: usize,
}

/// A timed model of everything beyond the L2.
///
/// Call protocol, per simulated cycle `now` (monotonically non-decreasing):
/// [`tick`](Self::tick) first, then [`drain`](Self::drain), then any number
/// of [`request`](Self::request)s. Requests may carry an arrival cycle in
/// the future (the hierarchy adds its own lookup latency); the backend must
/// not service a request before it arrives.
pub trait MemoryBackend: std::fmt::Debug + Send {
    /// Short backend name, used in diagnostics.
    fn name(&self) -> &'static str;

    /// Offers a request arriving at cycle `at`.
    fn request(&mut self, req: MemReq, at: u64) -> Admit;

    /// Advances internal state (bank service, MSHR release) to cycle `now`.
    fn tick(&mut self, now: u64);

    /// Appends every request serviced at or before `now` to `out`.
    fn drain(&mut self, now: u64, out: &mut Vec<Completion>);

    /// The earliest future cycle at which this backend's externally visible
    /// state can change *on its own* — a queued request starting service, a
    /// completion becoming drainable, an MSHR freeing. `None` means the
    /// backend holds no self-scheduled work (always true for backends that
    /// only ever answer [`Admit::At`], like [`FlatLatency`], whose
    /// completions are caller-scheduled).
    ///
    /// This is the event-driven fast-forward hook: when the core is fully
    /// stalled on memory, the simulator jumps straight to this cycle instead
    /// of ticking through the dead time. Backends that queue work internally
    /// **must** implement it — returning `None` with work pending would let
    /// the simulator skip past the completion.
    fn next_event(&self) -> Option<u64> {
        None
    }

    /// Whether a demand read offered now would be admitted.
    fn can_accept(&self) -> bool;

    /// Whether a *prefetch* should be admitted: true only when admitting it
    /// would still leave an MSHR free for demand traffic.
    fn has_spare_slot(&self) -> bool {
        self.can_accept()
    }

    /// Number of reads currently occupying MSHRs.
    fn in_flight(&self) -> usize;

    /// Accumulated counters (including any wrapped backend's).
    fn stats(&self) -> BackendStats;

    /// Clears all queues, MSHRs and counters.
    fn reset(&mut self);

    /// Clones the backend behind the trait object.
    fn clone_box(&self) -> Box<dyn MemoryBackend>;
}

impl Clone for Box<dyn MemoryBackend> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The paper's memory model: a fixed latency with unlimited outstanding
/// misses. Requests are answered [`Admit::At`] immediately and the backend
/// retains no state, which makes it byte-for-byte equivalent to the
/// pre-backend hierarchy (the parity tests in `tests/memory_backend.rs`
/// pin this down against recorded cycle counts).
#[derive(Debug, Clone)]
pub struct FlatLatency {
    latency: u32,
    stats: BackendStats,
}

impl FlatLatency {
    /// A flat backend with the given main-memory latency.
    pub fn new(latency: u32) -> Self {
        FlatLatency {
            latency,
            stats: BackendStats::default(),
        }
    }

    /// The fixed latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }
}

impl MemoryBackend for FlatLatency {
    fn name(&self) -> &'static str {
        "flat-latency"
    }

    fn request(&mut self, req: MemReq, at: u64) -> Admit {
        if req.is_write {
            self.stats.writes += 1;
        } else if req.is_prefetch {
            self.stats.prefetch_issued += 1;
        } else {
            self.stats.demand_reads += 1;
        }
        Admit::At(at + self.latency as u64)
    }

    fn tick(&mut self, _now: u64) {}

    fn drain(&mut self, _now: u64, _out: &mut Vec<Completion>) {}

    fn can_accept(&self) -> bool {
        true
    }

    fn in_flight(&self) -> usize {
        0
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = BackendStats::default();
    }

    fn clone_box(&self) -> Box<dyn MemoryBackend> {
        Box::new(self.clone())
    }
}

/// A caller-side completion schedule for [`Admit::At`] answers that cannot
/// be consumed immediately (used by the hierarchy's retry queue and by the
/// prefetcher for its own prefetches under a flat inner backend).
#[derive(Debug, Clone, Default)]
pub(crate) struct SelfSchedule {
    due: BTreeMap<u64, Vec<Completion>>,
}

impl SelfSchedule {
    pub(crate) fn push(&mut self, at: u64, c: Completion) {
        self.due.entry(at).or_default().push(c);
    }

    pub(crate) fn drain(&mut self, now: u64, out: &mut Vec<Completion>) {
        while let Some((&cycle, _)) = self.due.first_key_value() {
            if cycle > now {
                break;
            }
            let (_, batch) = self.due.pop_first().expect("checked non-empty"); // koc-lint: allow(panic, "pop follows a non-empty check")
            out.extend(batch);
        }
    }

    /// The earliest scheduled completion cycle, if any.
    pub(crate) fn next_due(&self) -> Option<u64> {
        self.due.first_key_value().map(|(&cycle, _)| cycle)
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.due.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.due.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_latency_answers_immediately_and_retains_nothing() {
        let mut b = FlatLatency::new(500);
        assert_eq!(b.request(MemReq::read(7, 0x40), 10), Admit::At(510));
        assert_eq!(b.in_flight(), 0);
        assert!(b.can_accept());
        let mut out = Vec::new();
        b.tick(600);
        b.drain(600, &mut out);
        assert!(out.is_empty(), "flat completions are caller-scheduled");
        assert_eq!(b.stats().demand_reads, 1);
    }

    #[test]
    fn flat_latency_classifies_request_kinds() {
        let mut b = FlatLatency::new(100);
        b.request(MemReq::read(1, 0), 0);
        b.request(MemReq::write(64), 0);
        let mut pf = MemReq::read(INTERNAL_TOKEN_BIT | 2, 128);
        pf.is_prefetch = true;
        b.request(pf, 0);
        let s = b.stats();
        assert_eq!(
            (s.demand_reads, s.writes, s.prefetch_issued, s.rejected),
            (1, 1, 1, 0)
        );
        b.reset();
        assert_eq!(b.stats(), BackendStats::default());
    }

    #[test]
    fn self_schedule_releases_in_cycle_order() {
        let mut s = SelfSchedule::default();
        let c = |t| Completion {
            token: t,
            addr: 0,
            is_prefetch: false,
            is_write: false,
        };
        s.push(20, c(2));
        s.push(10, c(1));
        s.push(20, c(3));
        let mut out = Vec::new();
        s.drain(15, &mut out);
        assert_eq!(out.iter().map(|c| c.token).collect::<Vec<_>>(), vec![1]);
        s.drain(25, &mut out);
        assert_eq!(
            out.iter().map(|c| c.token).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(s.is_empty());
    }

    #[test]
    fn boxed_backends_clone() {
        let b: Box<dyn MemoryBackend> = Box::new(FlatLatency::new(42));
        let c = b.clone();
        assert_eq!(c.name(), "flat-latency");
    }
}
