//! A set-associative cache with true-LRU replacement.

use serde::{Deserialize, Serialize};

/// Geometry of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Creates a cache configuration.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (zero sizes, capacity not a
    /// multiple of `ways * line_bytes`, or non-power-of-two line size).
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64, latency: u32) -> Self {
        assert!(
            size_bytes > 0 && ways > 0 && line_bytes > 0,
            "cache geometry must be non-zero"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert_eq!(
            size_bytes % (ways as u64 * line_bytes),
            0,
            "capacity must be a whole number of sets"
        );
        CacheConfig {
            size_bytes,
            ways,
            line_bytes,
            latency,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }

    /// The paper's L1 configuration: 32 KB, 4-way, 32-byte lines, 2 cycles.
    pub fn table1_l1() -> Self {
        CacheConfig::new(32 * 1024, 4, 32, 2)
    }

    /// The paper's L2 configuration: 512 KB, 4-way, 64-byte lines, 10 cycles.
    pub fn table1_l2() -> Self {
        CacheConfig::new(512 * 1024, 4, 64, 10)
    }
}

/// Whether an access hit or missed in a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (allocate-on-miss).
    Miss,
}

impl AccessOutcome {
    /// Returns `true` on [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        self == AccessOutcome::Hit
    }
}

#[derive(Debug, Clone, Default)]
struct CacheSet {
    /// Tags ordered most-recently-used first.
    lru: Vec<u64>,
}

/// A set-associative, true-LRU, allocate-on-miss cache.
///
/// The cache tracks only tags (no data): the simulator needs hit/miss
/// timing, not values.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<CacheSet>,
    /// `log2(line_bytes)` when the line size is a power of two — the common
    /// geometry — so the per-access address split is a shift/mask instead
    /// of two 64-bit divisions.
    line_shift: Option<u32>,
    /// `num_sets - 1` when the set count is a power of two.
    set_mask: Option<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![CacheSet::default(); config.num_sets()];
        let line_shift = config
            .line_bytes
            .is_power_of_two()
            .then(|| config.line_bytes.trailing_zeros());
        let set_mask = sets.len().is_power_of_two().then(|| sets.len() as u64 - 1);
        Cache {
            config,
            sets,
            line_shift,
            set_mask,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn split(&self, addr: u64) -> (usize, u64) {
        let line = match self.line_shift {
            Some(shift) => addr >> shift,
            None => addr / self.config.line_bytes,
        };
        match self.set_mask {
            Some(mask) => ((line & mask) as usize, line >> mask.count_ones()),
            None => (
                (line % self.sets.len() as u64) as usize,
                line / self.sets.len() as u64,
            ),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses byte address `addr`, updating LRU state and fill state.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let (set_idx, tag) = self.split(addr);
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.lru.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.lru.remove(pos);
            set.lru.insert(0, t);
            self.hits += 1;
            AccessOutcome::Hit
        } else {
            set.lru.insert(0, tag);
            if set.lru.len() > ways {
                set.lru.pop();
            }
            self.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// Probes for presence of the line containing `addr` without updating state.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.split(addr);
        self.sets[set_idx].lru.contains(&tag)
    }

    /// Number of hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all accesses so far (0 when no accesses were made).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Invalidates all lines and resets statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.lru.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 2 sets, 2 ways, 64-byte lines.
        Cache::new(CacheConfig::new(256, 2, 64, 1))
    }

    #[test]
    fn geometry_is_derived_correctly() {
        let c = CacheConfig::table1_l1();
        assert_eq!(c.num_sets(), 256);
        let l2 = CacheConfig::table1_l2();
        assert_eq!(l2.num_sets(), 2048);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn inconsistent_geometry_panics() {
        let _ = CacheConfig::new(100, 3, 32, 1);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache();
        assert_eq!(c.access(0x1000), AccessOutcome::Miss);
        assert_eq!(c.access(0x1000), AccessOutcome::Hit);
        assert_eq!(c.access(0x1008), AccessOutcome::Hit, "same line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    #[allow(clippy::erasing_op)]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        // Set 0 holds lines with even line index. Lines 0, 2, 4 map to set 0.
        c.access(0 * 64); // miss, set 0 = [0]
        c.access(2 * 64); // miss, set 0 = [2, 0]
        c.access(0 * 64); // hit,  set 0 = [0, 2]
        c.access(4 * 64); // miss, evicts 2; set 0 = [4, 0]
        assert!(c.contains(0 * 64));
        assert!(!c.contains(2 * 64));
        assert!(c.contains(4 * 64));
    }

    #[test]
    fn contains_does_not_change_state() {
        let mut c = small_cache();
        c.access(0x40);
        let before = (c.hits(), c.misses());
        assert!(c.contains(0x40));
        assert!(!c.contains(0x4000));
        assert_eq!((c.hits(), c.misses()), before);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = small_cache();
        c.access(0x40);
        c.access(0x40);
        c.reset();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert!(!c.contains(0x40));
    }

    #[test]
    fn miss_ratio_reflects_stream() {
        let mut c = Cache::new(CacheConfig::table1_l1());
        // Touch 1024 distinct lines twice: first pass all miss, second pass all
        // hit (working set exactly equals capacity).
        for i in 0..1024u64 {
            c.access(i * 32);
        }
        for i in 0..1024u64 {
            c.access(i * 32);
        }
        assert!((c.miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn streaming_beyond_capacity_always_misses() {
        let mut c = small_cache();
        for i in 0..64u64 {
            assert_eq!(c.access(i * 64 * 2), AccessOutcome::Miss);
        }
    }
}
