//! A banked main-memory model: per-bank open-row buffers and FIFO queues,
//! plus a finite MSHR file that bounds outstanding reads.
//!
//! Timing is layered on top of the hierarchy's `memory_latency` (the flat
//! DRAM access time): a row-buffer hit costs exactly `memory_latency`, a
//! closed bank adds `act_latency` (activate), and a conflicting open row
//! adds `precharge_latency` on top of that. Each request also occupies its
//! bank for `bank_busy` cycles, serialising accesses that collide on a
//! bank. Setting every penalty to zero and the MSHR file to
//! [`DramConfig::UNLIMITED_MSHRS`] makes the model cycle-equivalent to
//! [`crate::FlatLatency`] — the conformance anchor the tests pin down.

use crate::backend::{Admit, BackendStats, Completion, MemReq, MemoryBackend};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Geometry and timing of the banked DRAM backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Miss-status-holding registers: the maximum number of outstanding
    /// reads (demand + prefetch). Use [`DramConfig::UNLIMITED_MSHRS`] for an
    /// unbounded file. Posted writes bypass the MSHR file.
    pub mshr_entries: usize,
    /// Number of independent DRAM banks.
    pub banks: usize,
    /// Row-buffer size per bank in bytes (consecutive rows interleave
    /// across banks).
    pub row_bytes: u64,
    /// Extra cycles to activate (open) a row in a precharged bank.
    pub act_latency: u32,
    /// Extra cycles to precharge a bank whose open row conflicts, paid on
    /// top of `act_latency`.
    pub precharge_latency: u32,
    /// Cycles a request occupies its bank (data-burst occupancy); requests
    /// queued behind it wait this long per predecessor.
    pub bank_busy: u32,
}

impl DramConfig {
    /// Sentinel MSHR count meaning "never back-pressure".
    pub const UNLIMITED_MSHRS: usize = usize::MAX;

    /// A small contemporary part: 16 MSHRs, 8 banks, 4 KB rows, activate
    /// and precharge each at a tenth of the paper's 1000-cycle access, and
    /// a 16-cycle burst.
    pub fn table1_like() -> Self {
        DramConfig {
            mshr_entries: 16,
            banks: 8,
            row_bytes: 4096,
            act_latency: 100,
            precharge_latency: 100,
            bank_busy: 16,
        }
    }

    /// An idealized part: unlimited MSHRs, free row management and no bank
    /// occupancy. Cycle-equivalent to [`crate::FlatLatency`].
    pub fn ideal() -> Self {
        DramConfig {
            mshr_entries: Self::UNLIMITED_MSHRS,
            banks: 1,
            row_bytes: 4096,
            act_latency: 0,
            precharge_latency: 0,
            bank_busy: 0,
        }
    }

    /// Sets the MSHR count (builder style).
    pub fn with_mshr_entries(mut self, entries: usize) -> Self {
        self.mshr_entries = entries;
        self
    }

    /// Sets the bank count (builder style).
    pub fn with_banks(mut self, banks: usize) -> Self {
        self.banks = banks;
        self
    }

    /// Sets the row-buffer size (builder style).
    pub fn with_row_bytes(mut self, bytes: u64) -> Self {
        self.row_bytes = bytes;
        self
    }

    /// The worst-case extra latency (beyond the base access) one request
    /// can pay for row management: a row conflict.
    pub fn worst_row_penalty(&self) -> u32 {
        self.act_latency + self.precharge_latency
    }

    /// Validates the geometry.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.mshr_entries == 0 {
            return Err("DRAM backend needs at least one MSHR".into());
        }
        if self.banks == 0 {
            return Err("DRAM backend needs at least one bank".into());
        }
        if self.row_bytes == 0 || !self.row_bytes.is_power_of_two() {
            return Err("row-buffer size must be a non-zero power of two".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::table1_like()
    }
}

#[derive(Debug, Clone)]
struct Pending {
    req: MemReq,
    /// Decoded row tag (the global row number).
    row: u64,
    arrival: u64,
}

#[derive(Debug, Clone, Default)]
struct Bank {
    /// The row held in the open row buffer, if any.
    open_row: Option<u64>,
    /// The bank services no new request before this cycle.
    busy_until: u64,
    /// FIFO of requests waiting for the bank.
    queue: VecDeque<Pending>,
}

/// The banked DRAM backend. See the module docs for the timing model.
#[derive(Debug, Clone)]
pub struct DramBackend {
    config: DramConfig,
    /// Base access latency (the hierarchy's `memory_latency`).
    base_latency: u32,
    banks: Vec<Bank>,
    /// Serviced requests waiting to be drained, keyed by completion cycle.
    done: BTreeMap<u64, Vec<Completion>>,
    /// Reads holding an MSHR (freed when the completion drains).
    reads_in_flight: usize,
    stats: BackendStats,
}

impl DramBackend {
    /// Creates a cold DRAM backend.
    ///
    /// # Panics
    /// Panics if the configuration fails [`DramConfig::validate`].
    pub fn new(config: DramConfig, base_latency: u32) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid DRAM configuration: {e}"); // koc-lint: allow(panic, "invalid configuration is a caller bug; validate() names the field")
        }
        DramBackend {
            banks: vec![Bank::default(); config.banks],
            config,
            base_latency,
            done: BTreeMap::new(),
            reads_in_flight: 0,
            stats: BackendStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Decodes an address into `(bank index, row tag)`. The bank index
    /// XOR-folds the higher row bits (the permutation-based interleaving
    /// real controllers use) so that power-of-two-spaced streams do not
    /// alias onto one bank and ping-pong its row buffer. The row tag is the
    /// full global row number: two accesses share a bank's open row iff
    /// they land in the same `row_bytes` window, regardless of how the
    /// bank hash distributed the rows.
    fn decode(&self, addr: u64) -> (usize, u64) {
        let global_row = addr / self.config.row_bytes;
        let mut hashed = global_row;
        hashed ^= hashed >> 16;
        hashed ^= hashed >> 8;
        hashed ^= hashed >> 4;
        ((hashed % self.config.banks as u64) as usize, global_row)
    }

    /// Row-management latency for accessing `row` in `bank`, updating the
    /// open-row state and the row-buffer counters.
    fn row_latency(
        stats: &mut BackendStats,
        bank: &mut Bank,
        row: u64,
        config: &DramConfig,
    ) -> u32 {
        let extra = match bank.open_row {
            Some(open) if open == row => {
                stats.row_buffer_hits += 1;
                0
            }
            None => {
                stats.row_buffer_misses += 1;
                config.act_latency
            }
            Some(_) => {
                stats.row_buffer_conflicts += 1;
                config.act_latency + config.precharge_latency
            }
        };
        bank.open_row = Some(row);
        extra
    }
}

impl MemoryBackend for DramBackend {
    fn name(&self) -> &'static str {
        "banked-dram"
    }

    fn request(&mut self, req: MemReq, at: u64) -> Admit {
        if !req.is_write {
            if self.reads_in_flight >= self.config.mshr_entries {
                self.stats.rejected += 1;
                return Admit::Reject;
            }
            self.reads_in_flight += 1;
            self.stats.mshr_high_water = self.stats.mshr_high_water.max(self.reads_in_flight);
            if req.is_prefetch {
                self.stats.prefetch_issued += 1;
            } else {
                self.stats.demand_reads += 1;
            }
        } else {
            self.stats.writes += 1;
        }
        let (bank, row) = self.decode(req.addr);
        self.banks[bank].queue.push_back(Pending {
            req,
            row,
            arrival: at,
        });
        Admit::Queued
    }

    fn tick(&mut self, now: u64) {
        for bank in &mut self.banks {
            while bank.busy_until <= now {
                let Some(head) = bank.queue.front() else {
                    break;
                };
                if head.arrival > now {
                    break;
                }
                let p = bank.queue.pop_front().expect("checked non-empty"); // koc-lint: allow(panic, "pop follows a non-empty check")
                let extra = Self::row_latency(&mut self.stats, bank, p.row, &self.config);
                let latency = self.base_latency as u64 + extra as u64;
                bank.busy_until = now + self.config.bank_busy as u64;
                self.done
                    .entry(now + latency)
                    .or_default()
                    .push(Completion {
                        token: p.req.token,
                        addr: p.req.addr,
                        is_prefetch: p.req.is_prefetch,
                        is_write: p.req.is_write,
                    });
                if self.config.bank_busy > 0 {
                    // The bank is occupied; younger requests wait for a
                    // later tick.
                    break;
                }
            }
        }
    }

    fn next_event(&self) -> Option<u64> {
        // Either a serviced request becomes drainable...
        let mut next = self.done.first_key_value().map(|(&cycle, _)| cycle);
        // ...or a bank can start servicing the head of its queue (which is
        // exactly the condition `tick` checks, so jumping to this cycle and
        // ticking once is equivalent to ticking every intermediate cycle).
        for bank in &self.banks {
            if let Some(head) = bank.queue.front() {
                let start = head.arrival.max(bank.busy_until);
                next = Some(next.map_or(start, |n| n.min(start)));
            }
        }
        next
    }

    fn drain(&mut self, now: u64, out: &mut Vec<Completion>) {
        while let Some((&cycle, _)) = self.done.first_key_value() {
            if cycle > now {
                break;
            }
            let (_, batch) = self.done.pop_first().expect("checked non-empty"); // koc-lint: allow(panic, "pop follows a non-empty check")
            for c in batch {
                if !c.is_write {
                    self.reads_in_flight -= 1;
                }
                out.push(c);
            }
        }
    }

    fn can_accept(&self) -> bool {
        self.reads_in_flight < self.config.mshr_entries
    }

    fn has_spare_slot(&self) -> bool {
        // Leave at least one MSHR free for demand traffic.
        self.config.mshr_entries == DramConfig::UNLIMITED_MSHRS
            || self.reads_in_flight + 1 < self.config.mshr_entries
    }

    fn in_flight(&self) -> usize {
        self.reads_in_flight
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn reset(&mut self) {
        for b in &mut self.banks {
            *b = Bank::default();
        }
        self.done.clear();
        self.reads_in_flight = 0;
        self.stats = BackendStats::default();
    }

    fn clone_box(&self) -> Box<dyn MemoryBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        b: &mut DramBackend,
        cycles: std::ops::RangeInclusive<u64>,
        out: &mut Vec<Completion>,
    ) {
        for now in cycles {
            b.tick(now);
            b.drain(now, out);
        }
    }

    fn one_bank() -> DramBackend {
        DramBackend::new(
            DramConfig {
                mshr_entries: 4,
                banks: 1,
                row_bytes: 4096,
                act_latency: 30,
                precharge_latency: 20,
                bank_busy: 10,
            },
            100,
        )
    }

    #[test]
    fn row_miss_hit_conflict_timing() {
        let mut b = one_bank();
        // Cold bank: row miss (activate) = 100 + 30.
        b.request(MemReq::read(1, 0), 0);
        let mut out = Vec::new();
        drive(&mut b, 0..=129, &mut out);
        assert!(out.is_empty());
        drive(&mut b, 130..=130, &mut out);
        assert_eq!(out.len(), 1, "first access completes at 130");
        // Same row: hit = 100.
        b.request(MemReq::read(2, 64), 131);
        drive(&mut b, 131..=231, &mut out);
        assert_eq!(out.len(), 2, "row hit completes 100 cycles after service");
        // Different row: conflict = 100 + 30 + 20.
        b.request(MemReq::read(3, 8192), 232);
        drive(&mut b, 232..=382, &mut out);
        assert_eq!(out.len(), 3);
        let s = b.stats();
        assert_eq!(
            (
                s.row_buffer_misses,
                s.row_buffer_hits,
                s.row_buffer_conflicts
            ),
            (1, 1, 1)
        );
    }

    #[test]
    fn mshr_file_rejects_when_full() {
        let mut b = one_bank(); // 4 MSHRs
        for t in 0..4 {
            assert_eq!(b.request(MemReq::read(t, t * 64), 0), Admit::Queued);
        }
        assert!(!b.can_accept());
        assert_eq!(b.request(MemReq::read(9, 0x9000), 0), Admit::Reject);
        assert_eq!(b.stats().rejected, 1);
        assert_eq!(b.in_flight(), 4);
        // Writes are posted: they bypass the MSHR file.
        assert_eq!(b.request(MemReq::write(0x4000), 0), Admit::Queued);
        // Draining a completion frees its MSHR.
        let mut out = Vec::new();
        drive(&mut b, 0..=600, &mut out);
        assert_eq!(b.in_flight(), 0);
        assert!(b.can_accept());
        assert_eq!(out.iter().filter(|c| c.is_write).count(), 1);
    }

    #[test]
    fn bank_busy_serialises_a_bank() {
        let mut b = one_bank();
        // Two same-row requests arriving together: second starts 10 cycles
        // (bank_busy) after the first.
        b.request(MemReq::read(1, 0), 5);
        b.request(MemReq::read(2, 64), 5);
        let mut out = Vec::new();
        // First: service at 5, row miss, done 5+130=135. Second: service at
        // 15 (10 cycles of bank occupancy later), row hit, done 15+100=115 —
        // it completes *earlier* (pipelined burst); both drained by 135.
        drive(&mut b, 0..=114, &mut out);
        assert!(out.is_empty());
        drive(&mut b, 115..=115, &mut out);
        assert_eq!(out.len(), 1, "the row hit overtakes the opener");
        drive(&mut b, 116..=135, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn banks_interleave_by_row() {
        let b = DramBackend::new(DramConfig::table1_like(), 100);
        let (bank0, row0) = b.decode(0);
        let (bank1, _) = b.decode(4096);
        let (bank8, row8) = b.decode(8 * 4096);
        assert_eq!(bank0, 0);
        assert_eq!(bank1, 1);
        assert_eq!(bank8, 0, "wraps around the 8 banks");
        assert_eq!(row0, 0, "the row tag is the global row number");
        assert_eq!(row8, 8);
    }

    #[test]
    fn distinct_rows_in_one_bank_conflict_even_with_odd_bank_counts() {
        // With 3 banks, global rows 19 and 20 both hash to bank 0; they are
        // different physical rows and must be timed as a conflict, not a
        // row-buffer hit.
        let mut b = DramBackend::new(
            DramConfig {
                mshr_entries: 8,
                banks: 3,
                row_bytes: 4096,
                act_latency: 10,
                precharge_latency: 10,
                bank_busy: 0,
            },
            100,
        );
        let (bank19, row19) = b.decode(19 * 4096);
        let (bank20, row20) = b.decode(20 * 4096);
        assert_eq!(bank19, bank20, "the aliasing premise holds");
        assert_ne!(row19, row20, "distinct rows keep distinct tags");
        b.request(MemReq::read(1, 19 * 4096), 0);
        b.request(MemReq::read(2, 20 * 4096), 0);
        let mut out = Vec::new();
        drive(&mut b, 0..=200, &mut out);
        let s = b.stats();
        assert_eq!(s.row_buffer_hits, 0, "{s:?}");
        assert_eq!(s.row_buffer_misses, 1);
        assert_eq!(s.row_buffer_conflicts, 1);
    }

    #[test]
    fn ideal_config_behaves_like_flat_latency() {
        let mut b = DramBackend::new(DramConfig::ideal(), 250);
        for t in 0..50 {
            assert_eq!(b.request(MemReq::read(t, t * 64), 10), Admit::Queued);
        }
        let mut out = Vec::new();
        drive(&mut b, 0..=259, &mut out);
        assert!(out.is_empty(), "nothing completes before 10 + 250");
        drive(&mut b, 260..=260, &mut out);
        assert_eq!(out.len(), 50, "all 50 overlap fully and complete at 260");
        assert!(b.has_spare_slot());
    }

    #[test]
    fn has_spare_slot_reserves_one_mshr_for_demands() {
        let mut b = one_bank(); // 4 MSHRs
        b.request(MemReq::read(1, 0), 0);
        b.request(MemReq::read(2, 64), 0);
        assert!(b.has_spare_slot(), "2 of 4 in flight");
        b.request(MemReq::read(3, 128), 0);
        assert!(!b.has_spare_slot(), "3 of 4: prefetching would leave none");
        assert!(b.can_accept(), "a demand still fits");
    }

    #[test]
    fn next_event_tracks_service_and_completion() {
        let mut b = one_bank(); // base 100, act 30
        assert_eq!(b.next_event(), None, "idle backend has no events");
        b.request(MemReq::read(1, 0), 7);
        assert_eq!(b.next_event(), Some(7), "head can start at its arrival");
        b.tick(7);
        // Serviced at 7, row miss: completes at 7 + 130.
        assert_eq!(b.next_event(), Some(137));
        let mut out = Vec::new();
        b.drain(136, &mut out);
        assert!(out.is_empty());
        b.drain(137, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(b.next_event(), None);
    }

    #[test]
    fn ticking_only_at_next_event_matches_per_cycle_ticking() {
        let requests = [(1u64, 0u64, 0u64), (2, 64, 3), (3, 8192, 5), (4, 128, 9)];
        let mut dense = one_bank();
        let mut sparse = one_bank();
        for &(t, addr, at) in &requests {
            dense.request(MemReq::read(t, addr), at);
            sparse.request(MemReq::read(t, addr), at);
        }
        let mut dense_out = Vec::new();
        let mut dense_times = Vec::new();
        for now in 0..=600 {
            dense.tick(now);
            dense.drain(now, &mut dense_out);
            for c in dense_out.drain(..) {
                dense_times.push((c.token, now));
            }
        }
        let mut sparse_out = Vec::new();
        let mut sparse_times = Vec::new();
        while let Some(now) = sparse.next_event() {
            sparse.tick(now);
            sparse.drain(now, &mut sparse_out);
            for c in sparse_out.drain(..) {
                sparse_times.push((c.token, now));
            }
        }
        assert_eq!(dense_times, sparse_times);
    }

    #[test]
    #[should_panic(expected = "invalid DRAM configuration")]
    fn zero_banks_panic() {
        let _ = DramBackend::new(
            DramConfig {
                banks: 0,
                ..DramConfig::table1_like()
            },
            100,
        );
    }
}
