//! The multi-level memory hierarchy: IL1, DL1, unified L2, and a pluggable
//! timed main-memory backend.

use crate::backend::{Admit, Completion, FlatLatency, MemReq, MemoryBackend, SelfSchedule};
use crate::cache::{Cache, CacheConfig};
use crate::config::{BackendKind, MemoryConfig};
use crate::dram::DramBackend;
use crate::prefetch::StridePrefetcher;
use crate::stats::MemoryStats;
use koc_core::FlatMap;
use koc_obs::{Event, NullObserver, Observer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The level that served a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// Served by the data L1.
    L1,
    /// Missed L1, served by the L2.
    L2,
    /// Missed L2, served by main memory.
    Memory,
}

impl MemLevel {
    /// Whether this access is a *long-latency* access in the paper's sense
    /// (a load that misses in L2 and goes to main memory).
    pub fn is_long_latency(self) -> bool {
        self == MemLevel::Memory
    }
}

/// Result of a data access: where it was served and its total latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataAccessResult {
    /// The level that served the access.
    pub level: MemLevel,
    /// Total latency in cycles from issue to data return.
    pub latency: u32,
}

/// Result of a timed data access ([`MemoryHierarchy::access_data_timed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedAccess {
    /// The completion cycle is known now: the caller schedules it.
    Ready {
        /// The level that served the access.
        level: MemLevel,
        /// Total latency in cycles from issue to data return.
        latency: u32,
    },
    /// The access went to a queueing backend (or is waiting for an MSHR);
    /// its token will surface from [`MemoryHierarchy::tick`] when the data
    /// returns.
    InFlight,
}

/// The full memory hierarchy.
///
/// Main memory is modelled by a pluggable timed [`MemoryBackend`]: the
/// default [`FlatLatency`] backend lets outstanding misses overlap freely
/// (the paper's assumption — a large instruction window exposes
/// memory-level parallelism), while the banked-DRAM backend bounds
/// outstanding misses with a finite MSHR file and models row-buffer
/// locality. Core-side bandwidth is modelled by the pipeline's memory
/// ports at the issue stage, which `koc-sim` enforces.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemoryConfig,
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    backend: Box<dyn MemoryBackend>,
    /// Demand misses waiting for an MSHR (FIFO), with their original
    /// arrival cycle at the backend.
    waiting: VecDeque<(MemReq, u64)>,
    /// Completions the hierarchy must deliver itself (an [`Admit::At`]
    /// answer to a retried request).
    self_scheduled: SelfSchedule,
    /// L2 lines filled by a completed prefetch, for usefulness accounting.
    /// A set in spirit (`FlatMap<()>`): point inserts/removes only, keyed by
    /// line number — never iterated, so it cannot leak hash order into
    /// simulated timing.
    prefetched_lines: FlatMap<()>,
    /// Demand L2 hits on prefetched lines.
    prefetched_hits: u64,
    /// Scratch buffer for backend completions.
    drained: Vec<Completion>,
    stats: MemoryStats,
}

/// Builds the backend stack a [`MemoryConfig`] describes: the base model,
/// optionally wrapped by a prefetcher.
fn backend_from_config(config: &MemoryConfig) -> Box<dyn MemoryBackend> {
    let base: Box<dyn MemoryBackend> = match config.backend {
        BackendKind::Flat => Box::new(FlatLatency::new(config.memory_latency)),
        BackendKind::Dram(d) => Box::new(DramBackend::new(d, config.memory_latency)),
    };
    if config.prefetch.is_enabled() {
        Box::new(StridePrefetcher::new(
            base,
            config.prefetch,
            config.l2.line_bytes,
        ))
    } else {
        base
    }
}

impl MemoryHierarchy {
    /// Creates an empty (cold) hierarchy.
    ///
    /// # Panics
    /// Panics if the configuration fails [`MemoryConfig::validate`].
    pub fn new(config: MemoryConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid memory configuration: {e}"); // koc-lint: allow(panic, "invalid configuration is a caller bug; validate() names the field")
        }
        MemoryHierarchy {
            il1: Cache::new(config.il1),
            dl1: Cache::new(config.dl1),
            l2: Cache::new(config.l2),
            backend: backend_from_config(&config),
            waiting: VecDeque::new(),
            self_scheduled: SelfSchedule::default(),
            prefetched_lines: FlatMap::default(),
            prefetched_hits: 0,
            drained: Vec::new(),
            config,
            stats: MemoryStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// The timed backend's name (for diagnostics).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Number of reads currently holding backend MSHRs.
    pub fn backend_in_flight(&self) -> usize {
        self.backend.in_flight()
    }

    /// Number of demand misses queued because the backend refused admission
    /// (waiting for a free MSHR). The cycle-accounting observer reads this
    /// to attribute otherwise-idle cycles to MSHR pressure.
    pub fn pending_demand_misses(&self) -> usize {
        self.waiting.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Accesses the data hierarchy at byte address `addr`, untimed: misses
    /// to main memory are charged the flat `memory_latency` regardless of
    /// backend contention, and nothing is posted to the timed backend.
    /// Used by tests and untimed callers; the pipeline's load path uses
    /// [`access_data_timed`] and committed stores drain through
    /// [`drain_store`].
    ///
    /// `is_store` only affects statistics: lines allocate in cache exactly
    /// like loads (write-allocate, write-back).
    ///
    /// [`access_data_timed`]: MemoryHierarchy::access_data_timed
    /// [`drain_store`]: MemoryHierarchy::drain_store
    pub fn access_data(&mut self, addr: u64, is_store: bool) -> DataAccessResult {
        match self.lookup_caches(addr, is_store) {
            Some(result) => result,
            None => DataAccessResult {
                level: MemLevel::Memory,
                latency: self.config.dl1.latency
                    + self.config.l2.latency
                    + self.config.memory_latency,
            },
        }
    }

    /// Writes back a committed store at cycle `now`. Cache state and
    /// statistics update exactly like [`access_data`] with `is_store`;
    /// additionally, an L2 miss is posted to the timed backend as a write
    /// (it occupies DRAM bank bandwidth but never an MSHR, and nothing
    /// waits for its completion).
    ///
    /// [`access_data`]: MemoryHierarchy::access_data
    pub fn drain_store(&mut self, addr: u64, now: u64) -> DataAccessResult {
        match self.lookup_caches(addr, true) {
            Some(result) => result,
            None => {
                let lookup = (self.config.dl1.latency + self.config.l2.latency) as u64;
                self.backend.request(MemReq::write(addr), now + lookup);
                DataAccessResult {
                    level: MemLevel::Memory,
                    latency: self.config.dl1.latency
                        + self.config.l2.latency
                        + self.config.memory_latency,
                }
            }
        }
    }

    /// Accesses the data hierarchy for a load at byte address `addr` on
    /// cycle `now`, with main-memory timing delegated to the backend.
    ///
    /// Cache hits (and [`Admit::At`] backends like [`FlatLatency`]) answer
    /// [`TimedAccess::Ready`] with the full latency. Otherwise the access
    /// returns [`TimedAccess::InFlight`] and `token` will surface from
    /// [`tick`](MemoryHierarchy::tick) when the data comes back — possibly
    /// after waiting for a free MSHR, which is the back-pressure the
    /// `mshr_full_stalls` counter measures.
    pub fn access_data_timed(&mut self, addr: u64, token: u64, now: u64) -> TimedAccess {
        self.access_data_timed_obs(addr, token, now, &mut NullObserver)
    }

    /// [`access_data_timed`](Self::access_data_timed) with an [`Observer`]:
    /// emits [`Event::MshrAlloc`] when the backend accepts the miss into its
    /// MSHR-like in-flight tracking. Timing is identical to the unobserved
    /// call.
    pub fn access_data_timed_obs<O: Observer>(
        &mut self,
        addr: u64,
        token: u64,
        now: u64,
        obs: &mut O,
    ) -> TimedAccess {
        if let Some(result) = self.lookup_caches(addr, false) {
            return TimedAccess::Ready {
                level: result.level,
                latency: result.latency,
            };
        }
        let lookup = self.config.dl1.latency + self.config.l2.latency;
        let arrival = now + lookup as u64;
        let req = MemReq::read(token, addr);
        // Keep the wait queue FIFO: nothing overtakes an already-waiting
        // demand miss.
        if !self.waiting.is_empty() {
            self.waiting.push_back((req, arrival));
            return TimedAccess::InFlight;
        }
        match self.backend.request(req, arrival) {
            Admit::At(done) => TimedAccess::Ready {
                level: MemLevel::Memory,
                latency: (done - now) as u32,
            },
            Admit::Queued => {
                if O::ENABLED {
                    obs.event(now, Event::MshrAlloc { token, addr });
                }
                TimedAccess::InFlight
            }
            Admit::Reject => {
                self.waiting.push_back((req, arrival));
                TimedAccess::InFlight
            }
        }
    }

    /// Advances the backend to cycle `now`, retries waiting demand misses,
    /// and appends the tokens of completed demand reads to `completed`.
    /// Call once per cycle, before issuing new accesses for that cycle.
    pub fn tick(&mut self, now: u64, completed: &mut Vec<u64>) {
        self.tick_obs(now, completed, &mut NullObserver);
    }

    /// [`tick`](Self::tick) with an [`Observer`]: emits [`Event::MshrFill`]
    /// for every completed demand read delivered to the pipeline and
    /// [`Event::MshrAlloc`] when a queued miss finally wins an MSHR on
    /// retry. Timing is identical to the unobserved call.
    pub fn tick_obs<O: Observer>(&mut self, now: u64, completed: &mut Vec<u64>, obs: &mut O) {
        self.backend.tick(now);
        self.drained.clear();
        let mut drained = std::mem::take(&mut self.drained);
        self.backend.drain(now, &mut drained);
        self.self_scheduled.drain(now, &mut drained);
        for c in &drained {
            if c.is_write {
                continue;
            }
            if c.is_prefetch {
                // Fill the prefetched line into L2 and remember it for the
                // usefulness statistic. The tracking set is bounded by the
                // L2's line capacity: anything beyond that has certainly
                // been evicted, so the marker would be stale anyway.
                self.l2.access(c.addr);
                let cap = (self.config.l2.size_bytes / self.config.l2.line_bytes) as usize;
                if self.prefetched_lines.len() >= cap {
                    self.prefetched_lines.clear();
                }
                self.prefetched_lines
                    .insert((c.addr / self.config.l2.line_bytes) as usize, ());
            } else {
                if O::ENABLED {
                    obs.event(now, Event::MshrFill { token: c.token });
                }
                completed.push(c.token);
            }
        }
        drained.clear();
        self.drained = drained;
        // Retry demand misses that were waiting for an MSHR, oldest first.
        while let Some(&(req, arrival)) = self.waiting.front() {
            match self.backend.request(req, arrival.max(now)) {
                Admit::At(done) => {
                    self.waiting.pop_front();
                    self.self_scheduled.push(
                        done.max(now),
                        Completion {
                            token: req.token,
                            addr: req.addr,
                            is_prefetch: false,
                            is_write: false,
                        },
                    );
                }
                Admit::Queued => {
                    if O::ENABLED {
                        obs.event(
                            now,
                            Event::MshrAlloc {
                                token: req.token,
                                addr: req.addr,
                            },
                        );
                    }
                    self.waiting.pop_front();
                }
                Admit::Reject => break,
            }
        }
        self.stats.mshr_full_stalls += self.waiting.len() as u64;
        self.sync_backend_stats();
    }

    /// The earliest future cycle at which the memory system can deliver a
    /// completion or otherwise change state on its own: the backend's next
    /// event or the hierarchy's own retry schedule. `None` when nothing is
    /// in flight beyond the L2.
    ///
    /// Used by the pipeline's event-driven fast-forward: between now and
    /// this cycle, per-cycle [`tick`](Self::tick)s are no-ops (demand misses
    /// waiting for an MSHR cannot be admitted before the backend frees one,
    /// which is a backend event).
    pub fn next_event(&self) -> Option<u64> {
        match (self.backend.next_event(), self.self_scheduled.next_due()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Accounts for `cycles` skipped ticks during which the memory system
    /// provably did nothing (fast-forward): the only per-cycle side effect
    /// of an idle [`tick`](Self::tick) is the MSHR-wait counter, which grows
    /// by the (constant, during idle time) length of the wait queue.
    pub fn account_idle_ticks(&mut self, cycles: u64) {
        self.stats.mshr_full_stalls += self.waiting.len() as u64 * cycles;
    }

    /// Copies the backend's counters into the public [`MemoryStats`].
    fn sync_backend_stats(&mut self) {
        let b = self.backend.stats();
        self.stats.row_buffer_hits = b.row_buffer_hits;
        self.stats.row_buffer_misses = b.row_buffer_misses;
        self.stats.row_buffer_conflicts = b.row_buffer_conflicts;
        self.stats.prefetch_issued = b.prefetch_issued;
        self.stats.prefetch_useful = b.prefetch_useful + self.prefetched_hits;
    }

    /// The shared L1/L2 lookup: updates cache state and statistics and
    /// returns the result for hits, or `None` when the access misses L2 and
    /// must go to the backend.
    fn lookup_caches(&mut self, addr: u64, is_store: bool) -> Option<DataAccessResult> {
        self.stats.data_accesses += 1;
        if is_store {
            self.stats.store_accesses += 1;
        }
        let l1 = self.dl1.access(addr);
        if l1.is_hit() {
            self.stats.dl1_hits += 1;
            return Some(DataAccessResult {
                level: MemLevel::L1,
                latency: self.config.dl1.latency,
            });
        }
        self.stats.dl1_misses += 1;
        let line = addr / self.config.l2.line_bytes;
        let l2 = self.l2.access(addr);
        if self.config.perfect_l2 || l2.is_hit() {
            self.stats.l2_hits += 1;
            if self.prefetched_lines.remove(line as usize).is_some() {
                self.prefetched_hits += 1;
                self.sync_backend_stats();
            }
            return Some(DataAccessResult {
                level: MemLevel::L2,
                latency: self.config.dl1.latency + self.config.l2.latency,
            });
        }
        self.stats.l2_misses += 1;
        // The line was re-fetched from memory: a stale prefetch marker must
        // not count a later hit as prefetch success.
        let _ = self.prefetched_lines.remove(line as usize);
        None
    }

    /// Probes whether a data access to `addr` would be a long-latency (L2
    /// miss) access, without disturbing cache state.
    pub fn would_miss_l2(&self, addr: u64) -> bool {
        if self.config.perfect_l2 {
            return false;
        }
        !self.dl1.contains(addr) && !self.l2.contains(addr)
    }

    /// Accesses the instruction hierarchy at byte address `pc`.
    ///
    /// Returns the fetch latency. The FP workloads of the paper fit in IL1
    /// after the first touch of each line, so this is almost always 2
    /// cycles; the rare L2 miss is charged the flat latency (instruction
    /// fetch does not contend for data MSHRs).
    pub fn access_instruction(&mut self, pc: u64) -> u32 {
        self.stats.inst_accesses += 1;
        let l1 = self.il1.access(pc);
        if l1.is_hit() {
            return self.config.il1.latency;
        }
        let l2 = self.l2.access(pc);
        if self.config.perfect_l2 || l2.is_hit() {
            return self.config.il1.latency + self.config.l2.latency;
        }
        self.config.il1.latency + self.config.l2.latency + self.config.memory_latency
    }

    /// The L1 data cache (for inspection in tests).
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// The unified L2 cache (for inspection in tests).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The geometry of the data L1 cache.
    pub fn dl1_config(&self) -> &CacheConfig {
        &self.config.dl1
    }

    /// Invalidates all caches, drains the backend and clears statistics.
    pub fn reset(&mut self) {
        self.il1.reset();
        self.dl1.reset();
        self.l2.reset();
        self.backend.reset();
        self.waiting.clear();
        self.self_scheduled.clear();
        self.prefetched_lines.clear();
        self.prefetched_hits = 0;
        self.stats = MemoryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;
    use crate::prefetch::PrefetchConfig;

    #[test]
    fn cold_access_goes_to_memory_then_warms_up() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(1000));
        let first = m.access_data(0x10_0000, false);
        assert_eq!(first.level, MemLevel::Memory);
        assert_eq!(first.latency, 2 + 10 + 1000);
        let second = m.access_data(0x10_0000, false);
        assert_eq!(second.level, MemLevel::L1);
        assert_eq!(second.latency, 2);
    }

    #[test]
    fn perfect_l2_never_reaches_memory() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1_perfect_l2());
        for i in 0..10_000u64 {
            let r = m.access_data(i * 4096, false);
            assert_ne!(r.level, MemLevel::Memory);
            assert!(r.latency <= 12);
        }
    }

    #[test]
    fn l2_hit_latency_is_l1_plus_l2() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(500));
        m.access_data(0x20_0000, false); // fill L2 + L1
                                         // Evict from L1 by touching many other lines mapping everywhere, then
                                         // the original line should still be in the much larger L2.
        for i in 0..4096u64 {
            m.access_data(0x40_0000 + i * 32, false);
        }
        let r = m.access_data(0x20_0000, false);
        assert_eq!(r.level, MemLevel::L2);
        assert_eq!(r.latency, 12);
    }

    #[test]
    fn would_miss_l2_predicts_the_cold_miss() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(1000));
        assert!(m.would_miss_l2(0x55_0000));
        m.access_data(0x55_0000, false);
        assert!(!m.would_miss_l2(0x55_0000));
    }

    #[test]
    fn long_latency_level_is_memory_only() {
        assert!(MemLevel::Memory.is_long_latency());
        assert!(!MemLevel::L2.is_long_latency());
        assert!(!MemLevel::L1.is_long_latency());
    }

    #[test]
    fn instruction_fetches_hit_after_first_touch() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(1000));
        let cold = m.access_instruction(0x400);
        let warm = m.access_instruction(0x400);
        assert!(cold > warm);
        assert_eq!(warm, 2);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(100));
        m.access_data(0x1000, false);
        m.access_data(0x1000, true);
        let s = m.stats();
        assert_eq!(s.data_accesses, 2);
        assert_eq!(s.store_accesses, 1);
        assert_eq!(s.dl1_hits, 1);
        assert_eq!(s.dl1_misses, 1);
        assert_eq!(s.l2_misses, 1);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(100));
        m.access_data(0x1000, false);
        m.reset();
        assert_eq!(m.stats().data_accesses, 0);
        assert_eq!(m.access_data(0x1000, false).level, MemLevel::Memory);
    }

    #[test]
    fn flat_timed_access_matches_the_untimed_latency() {
        let mut timed = MemoryHierarchy::new(MemoryConfig::table1(750));
        let mut untimed = MemoryHierarchy::new(MemoryConfig::table1(750));
        for (i, addr) in [0x10_0000u64, 0x10_0000, 0x90_0000, 0x10_0020]
            .into_iter()
            .enumerate()
        {
            let u = untimed.access_data(addr, false);
            match timed.access_data_timed(addr, i as u64, 100 + i as u64) {
                TimedAccess::Ready { level, latency } => {
                    assert_eq!(level, u.level);
                    assert_eq!(latency, u.latency);
                }
                TimedAccess::InFlight => panic!("flat backends answer immediately"),
            }
        }
    }

    #[test]
    fn dram_misses_complete_through_tick() {
        let config = MemoryConfig::table1(100).with_dram(DramConfig {
            mshr_entries: 8,
            banks: 2,
            row_bytes: 4096,
            act_latency: 0,
            precharge_latency: 0,
            bank_busy: 0,
        });
        let mut m = MemoryHierarchy::new(config);
        assert_eq!(m.access_data_timed(0x10_0000, 7, 5), TimedAccess::InFlight);
        let mut done = Vec::new();
        // Arrival 5+12, service 100 cycles: completes at 117.
        for now in 6..117 {
            m.tick(now, &mut done);
            assert!(done.is_empty(), "nothing before cycle 117 (at {now})");
        }
        m.tick(117, &mut done);
        assert_eq!(done, vec![7]);
        assert_eq!(m.backend_in_flight(), 0);
    }

    #[test]
    fn mshr_exhaustion_queues_and_counts_stalls() {
        let config = MemoryConfig::table1(100).with_dram(DramConfig {
            mshr_entries: 1,
            banks: 1,
            row_bytes: 4096,
            act_latency: 0,
            precharge_latency: 0,
            bank_busy: 0,
        });
        let mut m = MemoryHierarchy::new(config);
        assert_eq!(m.access_data_timed(0x10_0000, 1, 0), TimedAccess::InFlight);
        assert_eq!(m.access_data_timed(0x90_0000, 2, 0), TimedAccess::InFlight);
        let mut done = Vec::new();
        let mut finished = Vec::new();
        for now in 1..=300 {
            m.tick(now, &mut done);
            for t in done.drain(..) {
                finished.push((t, now));
            }
        }
        assert_eq!(finished.len(), 2);
        assert_eq!(finished[0].0, 1);
        assert_eq!(finished[1].0, 2);
        assert!(
            finished[1].1 > finished[0].1 + 90,
            "the second miss serialized behind the only MSHR: {finished:?}"
        );
        assert!(m.stats().mshr_full_stalls > 0);
    }

    #[test]
    fn flat_hierarchy_never_has_pending_events() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(1000));
        assert_eq!(m.next_event(), None);
        // Flat accesses answer Ready; nothing is queued in the backend.
        m.access_data_timed(0x10_0000, 1, 0);
        assert_eq!(m.next_event(), None);
    }

    #[test]
    fn next_event_lets_a_caller_jump_to_the_dram_completion() {
        let config = MemoryConfig::table1(100).with_dram(DramConfig {
            mshr_entries: 8,
            banks: 2,
            row_bytes: 4096,
            act_latency: 0,
            precharge_latency: 0,
            bank_busy: 0,
        });
        let mut m = MemoryHierarchy::new(config);
        assert_eq!(m.next_event(), None);
        assert_eq!(m.access_data_timed(0x10_0000, 7, 5), TimedAccess::InFlight);
        let mut done = Vec::new();
        // Jump tick-to-tick along the event chain instead of every cycle;
        // the completion cycle must match the per-cycle test above (117).
        let mut completed_at = None;
        while let Some(at) = m.next_event() {
            m.tick(at, &mut done);
            if let Some(&token) = done.first() {
                assert_eq!(token, 7);
                completed_at = Some(at);
                done.clear();
            }
        }
        assert_eq!(completed_at, Some(117));
    }

    #[test]
    fn account_idle_ticks_scales_the_mshr_wait_counter() {
        let config = MemoryConfig::table1(100).with_dram(DramConfig {
            mshr_entries: 1,
            banks: 1,
            row_bytes: 4096,
            act_latency: 0,
            precharge_latency: 0,
            bank_busy: 0,
        });
        let mut m = MemoryHierarchy::new(config);
        m.access_data_timed(0x10_0000, 1, 0);
        m.access_data_timed(0x90_0000, 2, 0); // waits for the only MSHR
        let mut done = Vec::new();
        m.tick(1, &mut done);
        let before = m.stats().mshr_full_stalls;
        m.account_idle_ticks(10);
        assert_eq!(m.stats().mshr_full_stalls, before + 10);
    }

    #[test]
    fn prefetched_l2_hits_count_as_useful() {
        let config = MemoryConfig::table1(100).with_prefetch(PrefetchConfig::stride());
        let mut m = MemoryHierarchy::new(config);
        let base = 0x400_0000u64;
        let mut done = Vec::new();
        // A unit-stride (one L2 line per step) miss stream.
        for i in 0..20u64 {
            m.tick(i * 200, &mut done);
            m.access_data_timed(base + i * 64, i, i * 200);
        }
        m.tick(10_000, &mut done);
        let s = *m.stats();
        assert!(s.prefetch_issued > 0, "{s:?}");
        assert!(s.prefetch_useful > 0, "{s:?}");
    }
}
