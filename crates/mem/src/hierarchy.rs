//! The multi-level memory hierarchy: IL1, DL1, unified L2, main memory.

use crate::cache::{Cache, CacheConfig};
use crate::config::MemoryConfig;
use crate::stats::MemoryStats;
use serde::{Deserialize, Serialize};

/// The level that served a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// Served by the data L1.
    L1,
    /// Missed L1, served by the L2.
    L2,
    /// Missed L2, served by main memory.
    Memory,
}

impl MemLevel {
    /// Whether this access is a *long-latency* access in the paper's sense
    /// (a load that misses in L2 and goes to main memory).
    pub fn is_long_latency(self) -> bool {
        self == MemLevel::Memory
    }
}

/// Result of a data access: where it was served and its total latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataAccessResult {
    /// The level that served the access.
    pub level: MemLevel,
    /// Total latency in cycles from issue to data return.
    pub latency: u32,
}

/// The full memory hierarchy.
///
/// Outstanding misses overlap freely (no MSHR limit); the paper relies on a
/// large instruction window exposing memory-level parallelism and models the
/// cache ports (2) at the issue stage, which [`koc-sim`] enforces.
///
/// [`koc-sim`]: https://example.org
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemoryConfig,
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    stats: MemoryStats,
}

impl MemoryHierarchy {
    /// Creates an empty (cold) hierarchy.
    pub fn new(config: MemoryConfig) -> Self {
        MemoryHierarchy {
            il1: Cache::new(config.il1),
            dl1: Cache::new(config.dl1),
            l2: Cache::new(config.l2),
            config,
            stats: MemoryStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Accesses the data hierarchy at byte address `addr`.
    ///
    /// `is_store` only affects statistics: stores allocate in cache exactly
    /// like loads (write-allocate, write-back).
    pub fn access_data(&mut self, addr: u64, is_store: bool) -> DataAccessResult {
        self.stats.data_accesses += 1;
        if is_store {
            self.stats.store_accesses += 1;
        }
        let l1 = self.dl1.access(addr);
        if l1.is_hit() {
            self.stats.dl1_hits += 1;
            return DataAccessResult {
                level: MemLevel::L1,
                latency: self.config.dl1.latency,
            };
        }
        self.stats.dl1_misses += 1;
        let l2 = self.l2.access(addr);
        if self.config.perfect_l2 || l2.is_hit() {
            self.stats.l2_hits += 1;
            return DataAccessResult {
                level: MemLevel::L2,
                latency: self.config.dl1.latency + self.config.l2.latency,
            };
        }
        self.stats.l2_misses += 1;
        DataAccessResult {
            level: MemLevel::Memory,
            latency: self.config.dl1.latency + self.config.l2.latency + self.config.memory_latency,
        }
    }

    /// Probes whether a data access to `addr` would be a long-latency (L2
    /// miss) access, without disturbing cache state.
    pub fn would_miss_l2(&self, addr: u64) -> bool {
        if self.config.perfect_l2 {
            return false;
        }
        !self.dl1.contains(addr) && !self.l2.contains(addr)
    }

    /// Accesses the instruction hierarchy at byte address `pc`.
    ///
    /// Returns the fetch latency. The FP workloads of the paper fit in IL1
    /// after the first touch of each line, so this is almost always 2 cycles.
    pub fn access_instruction(&mut self, pc: u64) -> u32 {
        self.stats.inst_accesses += 1;
        let l1 = self.il1.access(pc);
        if l1.is_hit() {
            return self.config.il1.latency;
        }
        let l2 = self.l2.access(pc);
        if self.config.perfect_l2 || l2.is_hit() {
            return self.config.il1.latency + self.config.l2.latency;
        }
        self.config.il1.latency + self.config.l2.latency + self.config.memory_latency
    }

    /// The L1 data cache (for inspection in tests).
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// The unified L2 cache (for inspection in tests).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The geometry of the data L1 cache.
    pub fn dl1_config(&self) -> &CacheConfig {
        &self.config.dl1
    }

    /// Invalidates all caches and clears statistics.
    pub fn reset(&mut self) {
        self.il1.reset();
        self.dl1.reset();
        self.l2.reset();
        self.stats = MemoryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_goes_to_memory_then_warms_up() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(1000));
        let first = m.access_data(0x10_0000, false);
        assert_eq!(first.level, MemLevel::Memory);
        assert_eq!(first.latency, 2 + 10 + 1000);
        let second = m.access_data(0x10_0000, false);
        assert_eq!(second.level, MemLevel::L1);
        assert_eq!(second.latency, 2);
    }

    #[test]
    fn perfect_l2_never_reaches_memory() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1_perfect_l2());
        for i in 0..10_000u64 {
            let r = m.access_data(i * 4096, false);
            assert_ne!(r.level, MemLevel::Memory);
            assert!(r.latency <= 12);
        }
    }

    #[test]
    fn l2_hit_latency_is_l1_plus_l2() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(500));
        m.access_data(0x20_0000, false); // fill L2 + L1
                                         // Evict from L1 by touching many other lines mapping everywhere, then
                                         // the original line should still be in the much larger L2.
        for i in 0..4096u64 {
            m.access_data(0x40_0000 + i * 32, false);
        }
        let r = m.access_data(0x20_0000, false);
        assert_eq!(r.level, MemLevel::L2);
        assert_eq!(r.latency, 12);
    }

    #[test]
    fn would_miss_l2_predicts_the_cold_miss() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(1000));
        assert!(m.would_miss_l2(0x55_0000));
        m.access_data(0x55_0000, false);
        assert!(!m.would_miss_l2(0x55_0000));
    }

    #[test]
    fn long_latency_level_is_memory_only() {
        assert!(MemLevel::Memory.is_long_latency());
        assert!(!MemLevel::L2.is_long_latency());
        assert!(!MemLevel::L1.is_long_latency());
    }

    #[test]
    fn instruction_fetches_hit_after_first_touch() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(1000));
        let cold = m.access_instruction(0x400);
        let warm = m.access_instruction(0x400);
        assert!(cold > warm);
        assert_eq!(warm, 2);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(100));
        m.access_data(0x1000, false);
        m.access_data(0x1000, true);
        let s = m.stats();
        assert_eq!(s.data_accesses, 2);
        assert_eq!(s.store_accesses, 1);
        assert_eq!(s.dl1_hits, 1);
        assert_eq!(s.dl1_misses, 1);
        assert_eq!(s.l2_misses, 1);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table1(100));
        m.access_data(0x1000, false);
        m.reset();
        assert_eq!(m.stats().data_accesses, 0);
        assert_eq!(m.access_data(0x1000, false).level, MemLevel::Memory);
    }
}
