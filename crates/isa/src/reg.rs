//! Logical (architectural) and physical register identifiers.
//!
//! The machine model follows the paper's Alpha-like ISA: 32 integer and 32
//! floating-point logical registers. Integer register 31 is *not* special
//! (we do not model a hard-wired zero register; the workload generators
//! simply never read what they did not write).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer logical registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point logical registers.
pub const NUM_FP_REGS: usize = 32;
/// Total number of logical registers (integer + floating point).
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// The class of a register: integer or floating point.
///
/// The paper sizes the integer and floating-point instruction queues
/// separately, and the SLIQ dependence mask in Section 3 is a bit mask over
/// logical registers, so the class is part of a register's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer register (`R0`–`R31`).
    Int,
    /// Floating-point register (`F0`–`F31`).
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// A logical (architectural) register: `R0`–`R31` or `F0`–`F31`.
///
/// Internally stored as a single flat index in `0..NUM_ARCH_REGS` so that it
/// can directly index the rename map and the 64-bit dependence mask used by
/// the SLIQ mechanism.
///
/// ```
/// use koc_isa::{ArchReg, RegClass};
/// let r = ArchReg::int(3);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.number(), 3);
/// assert_eq!(ArchReg::fp(3).flat_index(), 32 + 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates an integer register `R{n}`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub fn int(n: u8) -> Self {
        assert!(
            (n as usize) < NUM_INT_REGS,
            "integer register out of range: {n}"
        );
        ArchReg(n)
    }

    /// Creates a floating-point register `F{n}`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub fn fp(n: u8) -> Self {
        assert!((n as usize) < NUM_FP_REGS, "fp register out of range: {n}");
        ArchReg(NUM_INT_REGS as u8 + n)
    }

    /// Creates a register from its flat index in `0..NUM_ARCH_REGS`.
    ///
    /// # Panics
    /// Panics if `index >= NUM_ARCH_REGS`.
    pub fn from_flat_index(index: usize) -> Self {
        assert!(
            index < NUM_ARCH_REGS,
            "flat register index out of range: {index}"
        );
        ArchReg(index as u8)
    }

    /// The register class (integer or floating point).
    pub fn class(self) -> RegClass {
        if (self.0 as usize) < NUM_INT_REGS {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// The register number within its class (`0..32`).
    pub fn number(self) -> u8 {
        match self.class() {
            RegClass::Int => self.0,
            RegClass::Fp => self.0 - NUM_INT_REGS as u8,
        }
    }

    /// Flat index in `0..NUM_ARCH_REGS`, suitable for indexing rename tables
    /// and the SLIQ dependence bit mask.
    pub fn flat_index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over every logical register, integer registers first.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(ArchReg::from_flat_index)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "R{}", self.number()),
            RegClass::Fp => write!(f, "F{}", self.number()),
        }
    }
}

/// A physical register identifier, handed out by the rename stage.
///
/// Physical registers are a single flat pool shared by both classes, exactly
/// as in the paper's CAM register-mapping figures, where the mapping table is
/// indexed by physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysReg(pub u32);

impl PhysReg {
    /// The index of this physical register within the register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An inline list of up to [`MAX_SRCS`](crate::inst::MAX_SRCS) physical
/// registers.
///
/// Renamed source operands are bounded by the ISA's source-operand count, so
/// queue and in-flight bookkeeping never needs a heap-allocated `Vec` for
/// them — with hundreds of thousands of dispatches per simulated run, that
/// per-instruction allocation is pure hot-loop churn. `RegList` is `Copy`
/// and dereferences to a slice, so it drops into existing `Vec<PhysReg>`
/// call sites unchanged.
///
/// ```
/// use koc_isa::{PhysReg, RegList};
/// let l: RegList = [PhysReg(3), PhysReg(9)].into_iter().collect();
/// assert_eq!(l.len(), 2);
/// assert_eq!(l[1], PhysReg(9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegList {
    regs: [PhysReg; crate::inst::MAX_SRCS],
    len: u8,
}

impl Default for RegList {
    fn default() -> Self {
        Self::new()
    }
}

impl RegList {
    /// An empty list.
    pub const fn new() -> Self {
        RegList {
            regs: [PhysReg(0); crate::inst::MAX_SRCS],
            len: 0,
        }
    }

    /// Appends a register.
    ///
    /// # Panics
    /// Panics if the list already holds [`MAX_SRCS`](crate::inst::MAX_SRCS)
    /// registers.
    pub fn push(&mut self, reg: PhysReg) {
        let i = self.len as usize;
        assert!(i < crate::inst::MAX_SRCS, "RegList overflow");
        self.regs[i] = reg;
        self.len += 1;
    }

    /// The registers as a slice.
    pub fn as_slice(&self) -> &[PhysReg] {
        &self.regs[..self.len as usize]
    }
}

impl std::ops::Deref for RegList {
    type Target = [PhysReg];

    fn deref(&self) -> &[PhysReg] {
        self.as_slice()
    }
}

impl FromIterator<PhysReg> for RegList {
    fn from_iter<I: IntoIterator<Item = PhysReg>>(iter: I) -> Self {
        let mut list = RegList::new();
        for r in iter {
            list.push(r);
        }
        list
    }
}

impl From<&[PhysReg]> for RegList {
    fn from(slice: &[PhysReg]) -> Self {
        slice.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a RegList {
    type Item = &'a PhysReg;
    type IntoIter = std::slice::Iter<'a, PhysReg>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// Serialized as a plain JSON array (the unused capacity is not data).
impl Serialize for RegList {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<'de> Deserialize<'de> for RegList {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_registers_have_distinct_flat_indices() {
        let r3 = ArchReg::int(3);
        let f3 = ArchReg::fp(3);
        assert_ne!(r3, f3);
        assert_eq!(r3.flat_index(), 3);
        assert_eq!(f3.flat_index(), 35);
        assert_eq!(r3.number(), f3.number());
    }

    #[test]
    fn classes_are_reported_correctly() {
        assert_eq!(ArchReg::int(0).class(), RegClass::Int);
        assert_eq!(ArchReg::int(31).class(), RegClass::Int);
        assert_eq!(ArchReg::fp(0).class(), RegClass::Fp);
        assert_eq!(ArchReg::fp(31).class(), RegClass::Fp);
    }

    #[test]
    fn flat_index_round_trips() {
        for r in ArchReg::all() {
            assert_eq!(ArchReg::from_flat_index(r.flat_index()), r);
        }
    }

    #[test]
    fn all_yields_every_register_once() {
        let regs: Vec<_> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        let ints = regs.iter().filter(|r| r.class() == RegClass::Int).count();
        assert_eq!(ints, NUM_INT_REGS);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(ArchReg::int(5).to_string(), "R5");
        assert_eq!(ArchReg::fp(7).to_string(), "F7");
        assert_eq!(PhysReg(12).to_string(), "p12");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_int_register_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_flat_index_panics() {
        let _ = ArchReg::from_flat_index(64);
    }

    #[test]
    fn ordering_follows_flat_index() {
        assert!(ArchReg::int(0) < ArchReg::int(1));
        assert!(ArchReg::int(31) < ArchReg::fp(0));
    }
}
