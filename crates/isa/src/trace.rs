//! Dynamic instruction traces and rewindable cursors.
//!
//! The simulator is *trace driven*: a workload is a finite sequence of
//! dynamic instructions (the correct execution path). The pipeline fetches
//! through a [`TraceCursor`], which supports **rewinding** — the operation a
//! checkpoint rollback performs when a mispredicted branch (or exception) is
//! discovered after its entry has left the pseudo-ROB.

use crate::inst::Instruction;
use serde::{Deserialize, Serialize};
use std::ops::Index;

/// Identifier of a dynamic instruction: its position in the trace.
pub type InstId = usize;

/// A finite dynamic instruction stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    insts: Vec<Instruction>,
}

impl Trace {
    /// Creates an empty trace with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            insts: Vec::new(),
        }
    }

    /// Creates a trace from a vector of instructions.
    pub fn from_instructions(name: impl Into<String>, insts: Vec<Instruction>) -> Self {
        Trace {
            name: name.into(),
            insts,
        }
    }

    /// The workload name of this trace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an instruction and returns its [`InstId`].
    pub fn push(&mut self, inst: Instruction) -> InstId {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Returns the instruction at `id`, if it exists.
    pub fn get(&self, id: InstId) -> Option<&Instruction> {
        self.insts.get(id)
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.insts.iter()
    }

    /// Creates a cursor positioned at the start of the trace.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            trace: self,
            pos: 0,
        }
    }

    /// Encodes the trace in the versioned `koc-trace/1` JSON format (see
    /// [`crate::io`]).
    pub fn to_versioned_json(&self) -> String {
        crate::io::trace_to_json(self)
    }

    /// Decodes a trace from the versioned `koc-trace/1` JSON format.
    ///
    /// # Errors
    /// Returns a description of the first structural problem (unparseable
    /// JSON, unsupported schema, malformed instruction).
    pub fn from_versioned_json(text: &str) -> Result<Self, String> {
        crate::io::trace_from_json(text)
    }

    /// Saves the trace to `path` in the versioned JSON format, so recorded
    /// traces can be shared between runs and tools.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_versioned_json())
    }

    /// Loads a trace previously written by [`Trace::save`].
    ///
    /// # Errors
    /// Returns a description of the failure — filesystem or format.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        Self::from_versioned_json(&text)
    }

    /// Fraction of instructions of each property, handy for workload sanity checks.
    pub fn mix(&self) -> TraceMix {
        let mut mix = TraceMix::default();
        for i in &self.insts {
            mix.total += 1;
            if i.is_load() {
                mix.loads += 1;
            } else if i.is_store() {
                mix.stores += 1;
            } else if i.is_branch() {
                mix.branches += 1;
            } else if i.kind.is_fp() {
                mix.fp_ops += 1;
            } else {
                mix.int_ops += 1;
            }
        }
        mix
    }
}

impl Index<InstId> for Trace {
    type Output = Instruction;
    fn index(&self, id: InstId) -> &Instruction {
        &self.insts[id]
    }
}

impl Extend<Instruction> for Trace {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

impl FromIterator<Instruction> for Trace {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Trace {
            name: String::new(),
            insts: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

/// Instruction-mix summary of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMix {
    /// Total dynamic instructions.
    pub total: usize,
    /// Memory loads.
    pub loads: usize,
    /// Memory stores.
    pub stores: usize,
    /// Branches.
    pub branches: usize,
    /// Floating-point arithmetic operations.
    pub fp_ops: usize,
    /// Integer arithmetic operations.
    pub int_ops: usize,
}

impl TraceMix {
    /// Fraction of instructions that are loads.
    pub fn load_fraction(&self) -> f64 {
        self.loads as f64 / self.total.max(1) as f64
    }

    /// Fraction of instructions that are branches.
    pub fn branch_fraction(&self) -> f64 {
        self.branches as f64 / self.total.max(1) as f64
    }
}

/// A rewindable fetch cursor over a [`Trace`].
///
/// Fetch advances the cursor; checkpoint rollback rewinds it to the trace
/// index recorded in the checkpoint, after which the same instructions are
/// fetched and executed again (the re-execution cost of coarse-grain
/// recovery).
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    pos: InstId,
}

impl<'a> TraceCursor<'a> {
    /// The trace position (the [`InstId`] of the *next* instruction to fetch).
    pub fn position(&self) -> InstId {
        self.pos
    }

    /// Whether the cursor has reached the end of the trace.
    pub fn at_end(&self) -> bool {
        self.pos >= self.trace.len()
    }

    /// Peeks at the next instruction without consuming it.
    pub fn peek(&self) -> Option<(InstId, &'a Instruction)> {
        self.trace.get(self.pos).map(|i| (self.pos, i))
    }

    /// Fetches (consumes) the next instruction.
    pub fn next_inst(&mut self) -> Option<(InstId, &'a Instruction)> {
        let out = self.peek();
        if out.is_some() {
            self.pos += 1;
        }
        out
    }

    /// Rewinds the cursor so that the next fetched instruction is `id`.
    ///
    /// # Panics
    /// Panics if `id` is beyond the end of the trace.
    pub fn rewind_to(&mut self, id: InstId) {
        assert!(
            id <= self.trace.len(),
            "rewind target {id} beyond trace end"
        );
        self.pos = id;
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::reg::ArchReg;

    fn tiny_trace() -> Trace {
        let mut t = Trace::new("tiny");
        t.push(Instruction::op(
            0,
            OpKind::IntAlu,
            Some(ArchReg::int(1)),
            &[],
        ));
        t.push(Instruction::load(4, ArchReg::fp(1), ArchReg::int(1), 0x100));
        t.push(Instruction::op(
            8,
            OpKind::FpAlu,
            Some(ArchReg::fp(2)),
            &[ArchReg::fp(1)],
        ));
        t.push(Instruction::store(
            12,
            ArchReg::fp(2),
            ArchReg::int(1),
            0x108,
        ));
        t.push(Instruction::branch(16, ArchReg::int(1), true, 0));
        t
    }

    #[test]
    fn push_returns_sequential_ids() {
        let mut t = Trace::new("t");
        let a = t.push(Instruction::op(0, OpKind::Nop, None, &[]));
        let b = t.push(Instruction::op(4, OpKind::Nop, None, &[]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cursor_walks_in_program_order() {
        let t = tiny_trace();
        let mut c = t.cursor();
        let mut ids = Vec::new();
        while let Some((id, _)) = c.next_inst() {
            ids.push(id);
        }
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(c.at_end());
        assert!(c.next_inst().is_none());
    }

    #[test]
    fn cursor_rewind_replays_instructions() {
        let t = tiny_trace();
        let mut c = t.cursor();
        c.next_inst();
        c.next_inst();
        c.next_inst();
        assert_eq!(c.position(), 3);
        c.rewind_to(1);
        let (id, inst) = c.next_inst().unwrap();
        assert_eq!(id, 1);
        assert!(inst.is_load());
    }

    #[test]
    fn peek_does_not_advance() {
        let t = tiny_trace();
        let mut c = t.cursor();
        assert_eq!(c.peek().unwrap().0, 0);
        assert_eq!(c.peek().unwrap().0, 0);
        c.next_inst();
        assert_eq!(c.peek().unwrap().0, 1);
    }

    #[test]
    #[should_panic(expected = "beyond trace end")]
    fn rewind_past_end_panics() {
        let t = tiny_trace();
        let mut c = t.cursor();
        c.rewind_to(100);
    }

    #[test]
    fn mix_counts_each_category() {
        let m = tiny_trace().mix();
        assert_eq!(m.total, 5);
        assert_eq!(m.loads, 1);
        assert_eq!(m.stores, 1);
        assert_eq!(m.branches, 1);
        assert_eq!(m.fp_ops, 1);
        assert_eq!(m.int_ops, 1);
        assert!((m.load_fraction() - 0.2).abs() < 1e-12);
        assert!((m.branch_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_and_extend_work() {
        let base = tiny_trace();
        let mut t: Trace = base.iter().cloned().collect();
        assert_eq!(t.len(), 5);
        t.extend(base.iter().cloned());
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn indexing_returns_the_instruction() {
        let t = tiny_trace();
        assert!(t[1].is_load());
        assert!(t.get(99).is_none());
    }
}
