//! # koc-isa
//!
//! Register, micro-op and dynamic-trace model shared by every crate in the
//! *Out-of-Order Commit Processors* (HPCA 2004) reproduction.
//!
//! The paper evaluates SPEC2000fp programs on an Alpha-like superscalar
//! machine. This crate provides the minimal, simulator-friendly instruction
//! representation that the workload generators (`koc-workloads`), the
//! pipeline (`koc-sim`) and the mechanisms under study (`koc-core`)
//! agree on:
//!
//! * [`ArchReg`] — 32 integer + 32 floating-point logical registers,
//! * [`OpKind`] — operation classes with the Table 1 latencies,
//! * [`Instruction`] — one *dynamic* instruction of a trace (operands,
//!   memory address, branch outcome),
//! * [`Trace`] — a finite dynamic instruction stream plus a rewindable
//!   [`TraceCursor`], which is what checkpoint rollback re-execution needs,
//! * [`InstructionSource`] and [`ReplayWindow`] — the streaming ingestion
//!   seam: instructions produced on demand, replayed out of an O(window)
//!   ring buffer, so run length is unbounded by host memory.
//!
//! ```
//! use koc_isa::{ArchReg, Instruction, OpKind, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let ld = b.load(ArchReg::fp(1), ArchReg::int(2), 0x1000);
//! b.fp_alu(ArchReg::fp(2), &[ArchReg::fp(1), ArchReg::fp(3)]);
//! let trace = b.finish();
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace[ld].kind, OpKind::Load);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod inst;
pub mod io;
pub mod json;
pub mod op;
pub mod reg;
pub mod source;
pub mod trace;

pub use builder::TraceBuilder;
pub use inst::MAX_SRCS;
pub use inst::{BranchInfo, Instruction, MemAccess};
pub use op::{FuClass, OpKind, OpLatency};
pub use reg::{ArchReg, PhysReg, RegClass, RegList, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};
pub use source::{
    ForkMonitor, InstructionSource, IntoInstructionSource, LaneSource, MaterializedTrace,
    ReplayWindow, SourceExt, StreamFork,
};
pub use trace::{InstId, Trace, TraceCursor};
