//! A convenience builder for hand-written instruction sequences.
//!
//! Workload kernels and unit tests construct traces through this builder so
//! that program counters stay consistent and common idioms (loads, FP ops,
//! loop back-edges) stay one-liners.

use crate::inst::Instruction;
use crate::op::OpKind;
use crate::reg::ArchReg;
use crate::trace::{InstId, Trace};

/// Builds a [`Trace`] instruction by instruction.
///
/// ```
/// use koc_isa::{ArchReg, TraceBuilder};
/// let mut b = TraceBuilder::new();
/// let base = ArchReg::int(1);
/// b.int_alu(base, &[]);
/// b.load(ArchReg::fp(0), base, 0x1000);
/// b.fp_alu(ArchReg::fp(1), &[ArchReg::fp(0)]);
/// b.store(ArchReg::fp(1), base, 0x2000);
/// b.backward_branch(base, true);
/// let t = b.finish();
/// assert_eq!(t.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: Trace,
    pc: u64,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuilder {
    /// Creates an empty builder with the program counter at 0.
    pub fn new() -> Self {
        TraceBuilder {
            trace: Trace::new("built"),
            pc: 0,
        }
    }

    /// Creates an empty builder for a named trace.
    pub fn named(name: impl Into<String>) -> Self {
        TraceBuilder {
            trace: Trace::new(name),
            pc: 0,
        }
    }

    /// The current program counter (the pc the *next* instruction will get).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Emits an arbitrary pre-built instruction (its pc is overwritten to keep
    /// the stream consistent).
    pub fn raw(&mut self, mut inst: Instruction) -> InstId {
        inst.pc = self.pc;
        self.pc += 4;
        self.trace.push(inst)
    }

    /// Emits an integer ALU operation writing `dest`.
    pub fn int_alu(&mut self, dest: ArchReg, srcs: &[ArchReg]) -> InstId {
        self.raw(Instruction::op(0, OpKind::IntAlu, Some(dest), srcs))
    }

    /// Emits an integer multiply writing `dest`.
    pub fn int_mul(&mut self, dest: ArchReg, srcs: &[ArchReg]) -> InstId {
        self.raw(Instruction::op(0, OpKind::IntMul, Some(dest), srcs))
    }

    /// Emits a floating-point operation writing `dest`.
    pub fn fp_alu(&mut self, dest: ArchReg, srcs: &[ArchReg]) -> InstId {
        self.raw(Instruction::op(0, OpKind::FpAlu, Some(dest), srcs))
    }

    /// Emits a floating-point divide writing `dest`.
    pub fn fp_div(&mut self, dest: ArchReg, srcs: &[ArchReg]) -> InstId {
        self.raw(Instruction::op(0, OpKind::FpDiv, Some(dest), srcs))
    }

    /// Emits a load of `dest` from address `addr` with base register `base`.
    pub fn load(&mut self, dest: ArchReg, base: ArchReg, addr: u64) -> InstId {
        self.raw(Instruction::load(0, dest, base, addr))
    }

    /// Emits a store of `data` to address `addr` with base register `base`.
    pub fn store(&mut self, data: ArchReg, base: ArchReg, addr: u64) -> InstId {
        self.raw(Instruction::store(0, data, base, addr))
    }

    /// Emits a conditional branch with explicit outcome and target pc.
    pub fn branch_to(&mut self, cond: ArchReg, taken: bool, target: u64) -> InstId {
        self.raw(Instruction::branch(0, cond, taken, target))
    }

    /// Emits a loop back-edge: a branch whose target is `loop_head_pc`,
    /// conventionally taken on every iteration but the last.
    pub fn backward_branch(&mut self, cond: ArchReg, taken: bool) -> InstId {
        let target = self.pc.saturating_sub(64);
        self.branch_to(cond, taken, target)
    }

    /// Emits a no-op (padding).
    pub fn nop(&mut self) -> InstId {
        self.raw(Instruction::op(0, OpKind::Nop, None, &[]))
    }

    /// Emits an instruction that raises an exception at execute.
    pub fn excepting_op(&mut self, dest: ArchReg, srcs: &[ArchReg]) -> InstId {
        self.raw(Instruction::op(0, OpKind::IntAlu, Some(dest), srcs).with_exception())
    }

    /// Finishes the builder and returns the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcs_advance_by_four() {
        let mut b = TraceBuilder::new();
        b.nop();
        b.nop();
        b.nop();
        let t = b.finish();
        assert_eq!(t[0].pc, 0);
        assert_eq!(t[1].pc, 4);
        assert_eq!(t[2].pc, 8);
    }

    #[test]
    fn named_builder_names_the_trace() {
        let b = TraceBuilder::named("swim-like");
        assert!(b.is_empty());
        let t = b.finish();
        assert_eq!(t.name(), "swim-like");
    }

    #[test]
    fn helpers_emit_the_right_kinds() {
        let mut b = TraceBuilder::new();
        b.int_alu(ArchReg::int(1), &[]);
        b.int_mul(ArchReg::int(2), &[ArchReg::int(1)]);
        b.fp_alu(ArchReg::fp(1), &[]);
        b.fp_div(ArchReg::fp(2), &[ArchReg::fp(1)]);
        b.load(ArchReg::fp(3), ArchReg::int(1), 0x10);
        b.store(ArchReg::fp(3), ArchReg::int(1), 0x18);
        b.branch_to(ArchReg::int(1), false, 0);
        let t = b.finish();
        let kinds: Vec<_> = t.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                OpKind::IntAlu,
                OpKind::IntMul,
                OpKind::FpAlu,
                OpKind::FpDiv,
                OpKind::Load,
                OpKind::Store,
                OpKind::Branch
            ]
        );
    }

    #[test]
    fn excepting_op_sets_the_flag() {
        let mut b = TraceBuilder::new();
        let id = b.excepting_op(ArchReg::int(1), &[]);
        let t = b.finish();
        assert!(t[id].raises_exception);
    }

    #[test]
    fn backward_branch_targets_earlier_pc() {
        let mut b = TraceBuilder::new();
        for _ in 0..32 {
            b.nop();
        }
        let id = b.backward_branch(ArchReg::int(1), true);
        let t = b.finish();
        let br = t[id].branch.unwrap();
        assert!(br.taken);
        assert!(br.target < t[id].pc);
    }
}
