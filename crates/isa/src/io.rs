//! Versioned on-disk persistence for [`Trace`]s.
//!
//! Recorded traces are shareable artifacts: a trace captured in one run (or
//! produced by an external tool) can be replayed in another, byte for byte.
//! The format is versioned JSON under the schema id [`TRACE_SCHEMA`]
//! (`koc-trace/1`): the instruction encoding follows the workspace serde
//! stub's JSON conventions (the same shape `#[derive(Serialize)]` emits for
//! [`Instruction`]), so a saved file is exactly what the derive would
//! write, wrapped in a schema envelope:
//!
//! ```json
//! {"schema":"koc-trace/1","name":"stream_add","insts":[
//!   {"pc":0,"kind":"IntAlu","dest":1,"srcs":[1,null,null],
//!    "mem":null,"branch":null,"raises_exception":false}
//! ]}
//! ```
//!
//! Registers are flat indices (`0..32` integer, `32..64` floating point),
//! loads/stores carry a `mem` object, branches a `branch` object. Unknown
//! schemas are rejected with a descriptive error rather than misread.

use crate::inst::{BranchInfo, Instruction, MemAccess};
use crate::json::{parse_json, Json};
use crate::op::OpKind;
use crate::reg::{ArchReg, NUM_ARCH_REGS};
use crate::trace::Trace;
use serde::Serialize;

/// Schema identifier embedded in every saved trace.
pub const TRACE_SCHEMA: &str = "koc-trace/1";

/// Encodes a trace in the versioned `koc-trace/1` JSON format.
pub fn trace_to_json(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    serde::write_json_string(TRACE_SCHEMA, &mut out);
    out.push_str(",\"name\":");
    serde::write_json_string(trace.name(), &mut out);
    out.push_str(",\"insts\":[");
    for (i, inst) in trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        inst.write_json(&mut out);
    }
    out.push_str("]}");
    out
}

/// Decodes a trace from the versioned `koc-trace/1` JSON format.
///
/// # Errors
/// Returns a description of the first structural problem: unparseable JSON,
/// a missing or unsupported schema, or an instruction field that does not
/// decode (unknown op kind, register index out of range, …).
pub fn trace_from_json(text: &str) -> Result<Trace, String> {
    let json = parse_json(text)?;
    let schema = json
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != TRACE_SCHEMA {
        return Err(format!(
            "unsupported trace schema '{schema}' (expected {TRACE_SCHEMA})"
        ));
    }
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing name field")?;
    let Some(Json::Arr(items)) = json.get("insts") else {
        return Err("missing insts array".into());
    };
    let insts = items
        .iter()
        .enumerate()
        .map(|(i, item)| decode_instruction(item).map_err(|e| format!("instruction {i}: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Trace::from_instructions(name, insts))
}

fn decode_instruction(json: &Json) -> Result<Instruction, String> {
    let pc = json.get("pc").and_then(Json::as_u64).ok_or("missing pc")?;
    let kind = decode_kind(
        json.get("kind")
            .and_then(Json::as_str)
            .ok_or("missing kind")?,
    )?;
    let dest = decode_opt_reg(json.get("dest").unwrap_or(&Json::Null))?;
    let mut srcs = [None; crate::inst::MAX_SRCS];
    if let Some(Json::Arr(items)) = json.get("srcs") {
        if items.len() > srcs.len() {
            return Err(format!("too many sources: {}", items.len()));
        }
        for (slot, item) in srcs.iter_mut().zip(items.iter()) {
            *slot = decode_opt_reg(item)?;
        }
    }
    let mem = match json.get("mem") {
        None | Some(Json::Null) => None,
        Some(m) => Some(MemAccess::new(
            m.get("addr").and_then(Json::as_u64).ok_or("mem.addr")?,
            m.get("size").and_then(Json::as_u64).ok_or("mem.size")? as u8,
        )),
    };
    let branch = match json.get("branch") {
        None | Some(Json::Null) => None,
        Some(b) => {
            let taken = b
                .get("taken")
                .and_then(Json::as_bool)
                .ok_or("branch.taken")?;
            let target = b
                .get("target")
                .and_then(Json::as_u64)
                .ok_or("branch.target")?;
            let unconditional = b
                .get("unconditional")
                .and_then(Json::as_bool)
                .ok_or("branch.unconditional")?;
            Some(if unconditional {
                BranchInfo::unconditional(target)
            } else {
                BranchInfo::conditional(taken, target)
            })
        }
    };
    let raises_exception = json
        .get("raises_exception")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    Ok(Instruction {
        pc,
        kind,
        dest,
        srcs,
        mem,
        branch,
        raises_exception,
    })
}

fn decode_kind(name: &str) -> Result<OpKind, String> {
    Ok(match name {
        "IntAlu" => OpKind::IntAlu,
        "IntMul" => OpKind::IntMul,
        "IntDiv" => OpKind::IntDiv,
        "FpAlu" => OpKind::FpAlu,
        "FpDiv" => OpKind::FpDiv,
        "Load" => OpKind::Load,
        "Store" => OpKind::Store,
        "Branch" => OpKind::Branch,
        "Nop" => OpKind::Nop,
        other => return Err(format!("unknown op kind '{other}'")),
    })
}

fn decode_opt_reg(json: &Json) -> Result<Option<ArchReg>, String> {
    if *json == Json::Null {
        return Ok(None);
    }
    match json.as_u64() {
        Some(i) if (i as usize) < NUM_ARCH_REGS => Ok(Some(ArchReg::from_flat_index(i as usize))),
        Some(i) => Err(format!("register index {i} out of range")),
        None => Err(format!("register must be an index or null, got {json:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::named("round\ttrip");
        b.int_alu(ArchReg::int(1), &[]);
        b.load(ArchReg::fp(2), ArchReg::int(1), 0x1000_0000);
        b.fp_alu(ArchReg::fp(3), &[ArchReg::fp(2), ArchReg::fp(3)]);
        b.store(ArchReg::fp(3), ArchReg::int(1), 0x2000_0008);
        b.branch_to(ArchReg::int(1), true, 4);
        b.raw(Instruction::op(0, OpKind::Branch, None, &[ArchReg::int(2)]).with_exception());
        b.nop();
        b.finish()
    }

    #[test]
    fn save_load_round_trips_every_field() {
        let t = sample_trace();
        let json = trace_to_json(&t);
        let back = trace_from_json(&json).expect("round trip");
        assert_eq!(back, t);
        assert_eq!(back.name(), "round\ttrip");
    }

    #[test]
    fn values_beyond_f64_precision_round_trip_exactly() {
        // pcs and addresses are full u64s; the loader must not route them
        // through f64 (which silently rounds above 2^53).
        let mut t = Trace::new("wide");
        let addr = (1u64 << 53) + 1;
        t.push(Instruction::load(
            u64::MAX - 3,
            ArchReg::fp(0),
            ArchReg::int(1),
            addr,
        ));
        let back = trace_from_json(&trace_to_json(&t)).unwrap();
        assert_eq!(back[0].pc, u64::MAX - 3);
        assert_eq!(back[0].mem.unwrap().addr, addr);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let t = sample_trace();
        let json = trace_to_json(&t).replace(TRACE_SCHEMA, "koc-trace/999");
        let err = trace_from_json(&json).unwrap_err();
        assert!(err.contains("unsupported trace schema"), "{err}");
    }

    #[test]
    fn garbage_and_bad_fields_error_cleanly() {
        assert!(trace_from_json("not json").is_err());
        assert!(trace_from_json("{}").unwrap_err().contains("schema"));
        let bad_kind = format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"name\":\"x\",\"insts\":[{{\"pc\":0,\"kind\":\"Warp\"}}]}}"
        );
        let err = trace_from_json(&bad_kind).unwrap_err();
        assert!(err.contains("unknown op kind"), "{err}");
        let bad_reg = format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"name\":\"x\",\"insts\":[{{\"pc\":0,\"kind\":\"Nop\",\"dest\":99}}]}}"
        );
        let err = trace_from_json(&bad_reg).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn file_save_and_load_round_trip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("koc-isa-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.save(&path).expect("save");
        let back = Trace::load(&path).expect("load");
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new("empty");
        let back = trace_from_json(&trace_to_json(&t)).unwrap();
        assert_eq!(back, t);
        assert!(back.is_empty());
    }
}
