//! Streaming instruction ingestion: [`InstructionSource`], the
//! [`ReplayWindow`], and stream combinators.
//!
//! The simulator used to require the whole dynamic instruction stream in
//! memory as a [`Trace`] before a run could start, which caps run length by
//! host memory — backwards for a paper whose point is keeping *thousands* of
//! instructions in flight over *billions*-long executions. This module
//! inverts the ownership: a workload is an [`InstructionSource`] that
//! produces dynamic instructions **on demand**, and the pipeline fetches
//! through a [`ReplayWindow`] — a ring buffer that retains only the
//! instructions that may still be replayed (everything from the oldest live
//! recovery point to the fetch head). Peak memory becomes O(in-flight
//! window), independent of how long the stream runs.
//!
//! ```text
//!   InstructionSource ──pull──▶ ReplayWindow ──peek/next──▶ fetch stage
//!   (kernel generator,          (ring buffer:               ▲        │
//!    trace adapter,              release_to ◀── commit      └rewind──┘
//!    combinators)                trims the tail)              (rollback)
//! ```
//!
//! Three source families plug in:
//!
//! * [`MaterializedTrace`] — adapter over a pre-built [`Trace`] (or any
//!   `&Trace`, via [`IntoInstructionSource`]): today's workloads unchanged;
//! * streaming generators — `koc-workloads` emits every kernel lazily;
//! * combinators — [`SourceExt::then`], [`SourceExt::interleave`],
//!   [`SourceExt::repeat_n`] and [`SourceExt::warmup_measure`] compose
//!   sources into richer scenarios without materializing anything.
//!
//! # The replay contract
//!
//! The [`ReplayWindow`] honours the same rewind semantics as
//! [`TraceCursor`](crate::TraceCursor): [`ReplayWindow::rewind_to`] makes a
//! previously delivered instruction the next one fetched (checkpoint
//! rollback re-execution). The twist is that the window may *forget*:
//! [`ReplayWindow::release_to`] declares that no rewind or lookup below a
//! frontier will ever happen again (the commit engine calls it as recovery
//! points retire), letting the buffer drop its tail. Rewinding or reading
//! below the released frontier is a caller bug and panics.

use crate::inst::Instruction;
use crate::trace::{InstId, Trace};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A producer of dynamic instructions, pulled one at a time.
///
/// Implementations are finite or practically unbounded; the consumer learns
/// the end only when [`next_inst`](Self::next_inst) returns `None`. Sources
/// are stateful iterators — delivering an instruction consumes it. Replay
/// (rewind after a rollback) is the [`ReplayWindow`]'s job, not the
/// source's: a source is never asked to produce the same instruction twice.
pub trait InstructionSource {
    /// The workload name (used in reports and diagnostics).
    fn name(&self) -> &str;

    /// Produces the next dynamic instruction, or `None` at end of stream.
    fn next_inst(&mut self) -> Option<Instruction>;

    /// Total stream length, when the source knows it up front (materialized
    /// traces do; generators and combinators may not).
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

impl<S: InstructionSource + ?Sized> InstructionSource for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn next_inst(&mut self) -> Option<Instruction> {
        (**self).next_inst()
    }
    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
}

impl<S: InstructionSource + ?Sized> InstructionSource for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn next_inst(&mut self) -> Option<Instruction> {
        (**self).next_inst()
    }
    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
}

/// Conversion into a boxed [`InstructionSource`] — the argument type of the
/// simulator's entry points.
///
/// Every source converts to itself; `&Trace` converts to a
/// [`MaterializedTrace`] adapter, so call sites that used to pass a borrowed
/// trace keep compiling unchanged.
pub trait IntoInstructionSource<'a> {
    /// Converts `self` into a boxed source living at most `'a`.
    fn into_source(self) -> Box<dyn InstructionSource + Send + 'a>;
}

impl<'a, S: InstructionSource + Send + 'a> IntoInstructionSource<'a> for S {
    fn into_source(self) -> Box<dyn InstructionSource + Send + 'a> {
        Box::new(self)
    }
}

impl<'a> IntoInstructionSource<'a> for &'a Trace {
    fn into_source(self) -> Box<dyn InstructionSource + Send + 'a> {
        Box::new(MaterializedTrace::new(self))
    }
}

/// Adapter presenting a fully materialized [`Trace`] as an
/// [`InstructionSource`] — zero behaviour change for existing workloads.
#[derive(Debug, Clone)]
pub struct MaterializedTrace<'a> {
    trace: &'a Trace,
    next: InstId,
}

impl<'a> MaterializedTrace<'a> {
    /// A source that replays `trace` from the beginning.
    pub fn new(trace: &'a Trace) -> Self {
        MaterializedTrace { trace, next: 0 }
    }
}

impl InstructionSource for MaterializedTrace<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn next_inst(&mut self) -> Option<Instruction> {
        let inst = self.trace.get(self.next).copied();
        if inst.is_some() {
            self.next += 1;
        }
        inst
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.trace.len())
    }
}

// ---------------------------------------------------------------------
// The replay window
// ---------------------------------------------------------------------

/// A rewindable fetch window over an [`InstructionSource`].
///
/// The window buffers every instruction between the *release frontier* (the
/// oldest point any recovery could still rewind to, advanced by
/// [`release_to`](Self::release_to)) and the furthest instruction pulled
/// from the source. Fetch reads through [`peek`](Self::peek) /
/// [`next_inst`](Self::next_inst); rollback calls
/// [`rewind_to`](Self::rewind_to); in-flight instructions are looked up by
/// [`get`](Self::get). Instruction ids are stream positions, exactly as
/// [`InstId`] indexes a [`Trace`], so the same ids work across rewinds.
///
/// Occupancy is O(release frontier .. fetch head) — the machine's in-flight
/// window plus fetch lookahead — regardless of stream length;
/// [`peak_occupancy`](Self::peak_occupancy) reports the high-water mark.
pub struct ReplayWindow<'a> {
    source: Box<dyn InstructionSource + Send + 'a>,
    name: String,
    buf: VecDeque<Instruction>,
    /// Stream position of `buf[0]` (== the release frontier).
    base: InstId,
    /// Stream position of the next instruction to deliver.
    pos: InstId,
    /// The source returned `None`; `base + buf.len()` is the final length.
    ended: bool,
    peak: usize,
}

impl<'a> ReplayWindow<'a> {
    /// A window over any source (or `&Trace`).
    pub fn new(source: impl IntoInstructionSource<'a>) -> Self {
        let source = source.into_source();
        let name = source.name().to_string();
        ReplayWindow {
            source,
            name,
            buf: VecDeque::new(),
            base: 0,
            pos: 0,
            ended: false,
            peak: 0,
        }
    }

    /// The workload name of the underlying source.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stream position (the [`InstId`] of the *next* instruction to
    /// fetch).
    pub fn position(&self) -> InstId {
        self.pos
    }

    /// Total distinct instructions pulled from the source so far. Once
    /// [`at_end`](Self::at_end) is true, this is the stream's length.
    pub fn fetched(&self) -> usize {
        self.base + self.buf.len()
    }

    /// Instructions currently buffered (release frontier to fetch head).
    pub fn occupancy(&self) -> usize {
        self.buf.len()
    }

    /// High-water mark of [`occupancy`](Self::occupancy) over the window's
    /// lifetime — the run's actual replay-memory requirement.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// The underlying source's length hint, if it has one.
    pub fn len_hint(&self) -> Option<usize> {
        self.source.len_hint()
    }

    /// Pulls from the source until an instruction is buffered at `pos` or
    /// the source ends.
    fn fill(&mut self) {
        while !self.ended && self.pos >= self.base + self.buf.len() {
            match self.source.next_inst() {
                Some(inst) => {
                    self.buf.push_back(inst);
                    self.peak = self.peak.max(self.buf.len());
                }
                None => self.ended = true,
            }
        }
    }

    /// Whether the stream is exhausted at the current position (pulls one
    /// instruction ahead to find out, so the answer is definitive).
    pub fn at_end(&mut self) -> bool {
        self.fill();
        self.pos >= self.base + self.buf.len()
    }

    /// Peeks at the next instruction without consuming it, pulling from the
    /// source if the window has not buffered it yet.
    pub fn peek(&mut self) -> Option<(InstId, &Instruction)> {
        self.fill();
        self.buf.get(self.pos - self.base).map(|i| (self.pos, i))
    }

    /// Fetches (consumes) the next instruction.
    pub fn next_inst(&mut self) -> Option<(InstId, Instruction)> {
        let out = self.peek().map(|(id, inst)| (id, *inst));
        if out.is_some() {
            self.pos += 1;
        }
        out
    }

    /// The buffered instruction at stream position `id`.
    ///
    /// # Panics
    /// Panics if `id` is below the release frontier (the caller promised,
    /// via [`release_to`](Self::release_to), never to look there again) or
    /// at/above the fetch head.
    pub fn get(&self, id: InstId) -> &Instruction {
        assert!(
            id >= self.base,
            "instruction {id} was released from the replay window (frontier {})",
            self.base
        );
        self.buf
            .get(id - self.base)
            // koc-lint: allow(panic, "ReplayWindow contract: only fetched ids may be looked up")
            .unwrap_or_else(|| panic!("instruction {id} has not been fetched yet"))
    }

    /// The buffered instruction at `id`, or `None` if it was released or
    /// not yet fetched.
    pub fn try_get(&self, id: InstId) -> Option<&Instruction> {
        id.checked_sub(self.base).and_then(|i| self.buf.get(i))
    }

    /// Rewinds so that the next fetched instruction is `id` — the
    /// [`TraceCursor`](crate::TraceCursor) rollback contract. The same
    /// instructions are then delivered again from the buffer (the
    /// re-execution cost of coarse-grain recovery).
    ///
    /// # Panics
    /// Panics if `id` was released or lies beyond the current position.
    pub fn rewind_to(&mut self, id: InstId) {
        assert!(
            id >= self.base,
            "rewind target {id} was released from the replay window (frontier {})",
            self.base
        );
        assert!(
            id <= self.pos,
            "rewind target {id} is ahead of the fetch position {}",
            self.pos
        );
        self.pos = id;
    }

    /// Advances the release frontier: every instruction below `frontier`
    /// can never be rewound to or looked up again, so its buffer slot is
    /// reclaimed. Called by the commit engine as recovery points retire.
    /// A frontier ahead of the fetch position is clamped to it; a frontier
    /// behind the current one is a no-op (release is monotonic).
    pub fn release_to(&mut self, frontier: InstId) {
        let to = frontier.min(self.pos);
        while self.base < to {
            self.buf.pop_front();
            self.base += 1;
        }
    }
}

impl std::fmt::Debug for ReplayWindow<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayWindow")
            .field("name", &self.name)
            .field("base", &self.base)
            .field("pos", &self.pos)
            .field("occupancy", &self.buf.len())
            .field("peak", &self.peak)
            .field("ended", &self.ended)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Multi-reader fork
// ---------------------------------------------------------------------

/// Shared state behind a [`StreamFork`]: one underlying source, one buffer,
/// and a fetch cursor per lane.
///
/// The buffer retains exactly the span between the *fork frontier* (the
/// minimum lane position — released below it, the multi-reader
/// generalization of [`ReplayWindow::release_to`]) and the furthest
/// position any lane has pulled. Lanes that fetch at similar rates keep the
/// span — and therefore memory — bounded by their skew, independent of
/// stream length.
struct ForkState<'a> {
    source: Box<dyn InstructionSource + Send + 'a>,
    buf: VecDeque<Instruction>,
    /// Stream position of `buf[0]` (== the fork frontier, min over lanes).
    base: InstId,
    /// Per-lane stream position of the next instruction to deliver.
    pos: Vec<InstId>,
    ended: bool,
    peak: usize,
    /// Captured once at fork time so every lane reports the same hint
    /// without re-querying the (shared, mutating) source.
    len_hint: Option<usize>,
}

/// Instructions a lane copies out of the shared fork per lock acquisition.
/// Batching amortizes the mutex hop and the O(lanes) frontier scan from
/// per-instruction to per-batch; the price is that the shared buffer's
/// occupancy bound grows from O(lane skew) to O(lane skew + `LANE_BATCH`),
/// still independent of stream length.
pub const LANE_BATCH: usize = 32;

impl ForkState<'_> {
    /// Copies up to `max` instructions from `lane`'s cursor into `out`,
    /// pulling the underlying source when the lane is at the fetch head,
    /// then releases the buffer below the new minimum lane position (the
    /// fork frontier rule) — once per batch, not per instruction.
    fn fill_for(&mut self, lane: usize, out: &mut Vec<Instruction>, max: usize) {
        for _ in 0..max {
            let p = self.pos[lane];
            if p >= self.base + self.buf.len() {
                if self.ended {
                    break;
                }
                match self.source.next_inst() {
                    Some(inst) => {
                        self.buf.push_back(inst);
                        self.peak = self.peak.max(self.buf.len());
                    }
                    None => {
                        self.ended = true;
                        break;
                    }
                }
            }
            out.push(self.buf[p - self.base]);
            self.pos[lane] = p + 1;
        }
        let min = self.pos.iter().copied().min().unwrap_or(self.base);
        while self.base < min {
            self.buf.pop_front();
            self.base += 1;
        }
    }
}

/// Splits one [`InstructionSource`] into N identical per-lane streams that
/// are fetched **once** from the underlying source — the decode-once,
/// simulate-many seam used by lockstep sweeps.
///
/// Every lane sees the exact same instruction sequence the undivided source
/// would have produced (instructions are `Copy`; delivery order across
/// lanes cannot alter content), so per-lane simulation results are
/// bit-identical to solo runs by construction. Lanes read ahead in
/// [`LANE_BATCH`]-instruction batches (one lock per batch); the shared
/// buffer holds the span between the slowest and fastest lane cursor, so
/// the driver bounds memory to O(skew + batch), not O(stream), by bounding
/// the skew (e.g. lockstep chunking).
///
/// Lane handles are `Send` (the shared state sits behind a mutex), so lanes
/// may be driven from different threads, though the intended consumer — the
/// lockstep executor — drives them round-robin on one thread.
pub struct StreamFork;

impl StreamFork {
    /// Forks `source` into `lanes` independent readers.
    ///
    /// With `lanes == 0` the source is dropped and no readers exist; with
    /// `lanes == 1` the single lane behaves exactly like the undivided
    /// source (plus a mutex hop per instruction).
    pub fn split<'a>(source: impl IntoInstructionSource<'a>, lanes: usize) -> Vec<LaneSource<'a>> {
        if lanes == 0 {
            return Vec::new();
        }
        let source = source.into_source();
        let name = source.name().to_string();
        let len_hint = source.len_hint();
        let state = Arc::new(Mutex::new(ForkState {
            source,
            buf: VecDeque::new(),
            base: 0,
            pos: vec![0; lanes],
            ended: false,
            peak: 0,
            len_hint,
        }));
        (0..lanes)
            .map(|lane| LaneSource {
                state: Arc::clone(&state),
                lane,
                name: name.clone(),
                local: Vec::with_capacity(LANE_BATCH),
                cursor: 0,
            })
            .collect()
    }
}

/// One reader of a [`StreamFork`]: a plain [`InstructionSource`] delivering
/// the forked stream from this lane's own cursor.
pub struct LaneSource<'a> {
    state: Arc<Mutex<ForkState<'a>>>,
    lane: usize,
    name: String,
    /// Instructions staged out of the shared buffer, delivered before the
    /// next lock acquisition (see [`LANE_BATCH`]).
    local: Vec<Instruction>,
    cursor: usize,
}

impl<'a> LaneSource<'a> {
    /// High-water mark of the *shared* fork buffer — the largest
    /// slowest-to-fastest lane skew observed, in instructions. The same
    /// value is visible from every lane of the fork.
    pub fn shared_peak(&self) -> usize {
        self.lock().peak
    }

    /// Instructions currently buffered in the shared fork window.
    pub fn shared_occupancy(&self) -> usize {
        self.lock().buf.len()
    }

    /// This lane's stream position (the [`InstId`] of the next instruction
    /// it will deliver — instructions staged in the local batch but not yet
    /// delivered do not count).
    pub fn position(&self) -> InstId {
        self.lock().pos[self.lane] - (self.local.len() - self.cursor)
    }

    /// A passive handle onto the fork's shared buffer, for drivers that
    /// hand their lanes away (e.g. into processors) but still want to
    /// report the fork's memory high-water mark afterwards. Monitors never
    /// hold a lane cursor, so they do not pin the fork frontier.
    pub fn monitor(&self) -> ForkMonitor<'a> {
        ForkMonitor {
            state: Arc::clone(&self.state),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ForkState<'a>> {
        // koc-lint: allow(panic, "poisoning is unreachable: no code path panics while holding the fork lock")
        self.state.lock().expect("fork lock poisoned")
    }
}

impl InstructionSource for LaneSource<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_inst(&mut self) -> Option<Instruction> {
        if self.cursor == self.local.len() {
            self.cursor = 0;
            let Self {
                state, lane, local, ..
            } = self;
            local.clear();
            // koc-lint: allow(panic, "poisoning is unreachable: no code path panics while holding the fork lock")
            let mut fork = state.lock().expect("fork lock poisoned");
            fork.fill_for(*lane, local, LANE_BATCH);
        }
        let inst = self.local.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(inst)
    }

    fn len_hint(&self) -> Option<usize> {
        self.lock().len_hint
    }
}

impl std::fmt::Debug for LaneSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneSource")
            .field("name", &self.name)
            .field("lane", &self.lane)
            .finish_non_exhaustive()
    }
}

/// Read-only view of a [`StreamFork`]'s shared buffer: see
/// [`LaneSource::monitor`].
#[derive(Clone)]
pub struct ForkMonitor<'a> {
    state: Arc<Mutex<ForkState<'a>>>,
}

impl ForkMonitor<'_> {
    /// High-water mark of the shared fork buffer, in instructions.
    pub fn peak(&self) -> usize {
        // koc-lint: allow(panic, "poisoning is unreachable: no code path panics while holding the fork lock")
        self.state.lock().expect("fork lock poisoned").peak
    }

    /// Instructions currently buffered in the shared fork window.
    pub fn occupancy(&self) -> usize {
        // koc-lint: allow(panic, "poisoning is unreachable: no code path panics while holding the fork lock")
        self.state.lock().expect("fork lock poisoned").buf.len()
    }
}

impl std::fmt::Debug for ForkMonitor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkMonitor")
            .field("occupancy", &self.occupancy())
            .field("peak", &self.peak())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------

/// Stream-algebra adapters available on every [`InstructionSource`]
/// (blanket-implemented, like [`Iterator`]'s adapters).
pub trait SourceExt: InstructionSource + Sized {
    /// Runs `self` to completion, then `next` — e.g. a cache-warming kernel
    /// followed by the kernel under study. The second stream's program
    /// counters are rebased past the first's so the branch predictor sees
    /// two distinct code regions.
    fn then<B: InstructionSource>(self, next: B) -> Chain<Self, B> {
        Chain {
            name: format!("{}+{}", self.name(), next.name()),
            first: Some(self),
            second: next,
            pc_end: 0,
        }
    }

    /// Alternates blocks of `block` instructions from `self` and `other` —
    /// a coarse model of two co-scheduled workloads sharing the pipeline.
    /// Both streams keep their own program counters and architectural
    /// registers, so the interleaving also creates cross-workload (false)
    /// register dependences; that contention is the scenario.
    ///
    /// # Panics
    /// Panics if `block` is zero.
    fn interleave<B: InstructionSource>(self, other: B, block: usize) -> Interleave<Self, B> {
        assert!(block > 0, "interleave block must be non-zero");
        Interleave {
            name: format!("{}x{}", self.name(), other.name()),
            a: self,
            b: other,
            block,
            emitted_in_block: 0,
            from_a: true,
            a_done: false,
            b_done: false,
        }
    }

    /// Replays the stream `n` times end to end — the same static code
    /// re-executed, as a real outer loop would (program counters repeat
    /// per pass). The source must be `Clone` so each pass restarts from a
    /// pristine copy; `n = 0` is an empty stream.
    fn repeat_n(self, n: usize) -> Repeat<Self>
    where
        Self: Clone,
    {
        Repeat {
            name: format!("{}*{n}", self.name()),
            pristine: self.clone(),
            current: (n > 0).then_some(self),
            remaining: n,
            passes: n,
        }
    }

    /// Marks the first `warmup` instructions as a warm-up region and the
    /// next `measure` as the measured region, truncating the stream after
    /// them. The boundary is queryable via [`WarmupMeasure::region_of`],
    /// so harnesses can attribute statistics to the region an instruction
    /// belongs to.
    fn warmup_measure(self, warmup: usize, measure: usize) -> WarmupMeasure<Self> {
        WarmupMeasure {
            inner: self,
            warmup,
            measure,
            emitted: 0,
        }
    }
}

impl<S: InstructionSource + Sized> SourceExt for S {}

/// Sequential composition: see [`SourceExt::then`].
#[derive(Debug, Clone)]
pub struct Chain<A, B> {
    name: String,
    first: Option<A>,
    second: B,
    /// One past the highest pc the first stream emitted, aligned up; added
    /// to the second stream's pcs and branch targets.
    pc_end: u64,
}

impl<A: InstructionSource, B: InstructionSource> InstructionSource for Chain<A, B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_inst(&mut self) -> Option<Instruction> {
        if let Some(first) = &mut self.first {
            if let Some(inst) = first.next_inst() {
                self.pc_end = self.pc_end.max(inst.pc.saturating_add(4));
                return Some(inst);
            }
            self.first = None;
        }
        self.second.next_inst().map(|mut inst| {
            inst.pc = inst.pc.wrapping_add(self.pc_end);
            if let Some(b) = &mut inst.branch {
                b.target = b.target.wrapping_add(self.pc_end);
            }
            inst
        })
    }

    fn len_hint(&self) -> Option<usize> {
        match (&self.first, self.second.len_hint()) {
            (Some(first), Some(b)) => first.len_hint().map(|a| a + b),
            // Once the first stream is drained the count of already-emitted
            // instructions is unknown here; stay honest and decline.
            _ => None,
        }
    }
}

/// Block interleaving: see [`SourceExt::interleave`].
#[derive(Debug, Clone)]
pub struct Interleave<A, B> {
    name: String,
    a: A,
    b: B,
    block: usize,
    emitted_in_block: usize,
    from_a: bool,
    a_done: bool,
    b_done: bool,
}

impl<A: InstructionSource, B: InstructionSource> InstructionSource for Interleave<A, B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_inst(&mut self) -> Option<Instruction> {
        loop {
            if self.a_done && self.b_done {
                return None;
            }
            let current_done = if self.from_a {
                self.a_done
            } else {
                self.b_done
            };
            if current_done {
                // Current side exhausted; drain the other without blocking.
                self.from_a = !self.from_a;
                self.emitted_in_block = 0;
                continue;
            }
            let pulled = if self.from_a {
                self.a.next_inst()
            } else {
                self.b.next_inst()
            };
            match pulled {
                Some(inst) => {
                    self.emitted_in_block += 1;
                    if self.emitted_in_block >= self.block {
                        self.emitted_in_block = 0;
                        self.from_a = !self.from_a;
                    }
                    return Some(inst);
                }
                None => {
                    if self.from_a {
                        self.a_done = true;
                    } else {
                        self.b_done = true;
                    }
                    self.emitted_in_block = 0;
                    self.from_a = !self.from_a;
                }
            }
        }
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.a.len_hint()? + self.b.len_hint()?)
    }
}

/// End-to-end repetition: see [`SourceExt::repeat_n`].
#[derive(Debug, Clone)]
pub struct Repeat<S> {
    name: String,
    pristine: S,
    current: Option<S>,
    remaining: usize,
    /// Total passes requested at construction (for [`len_hint`], which
    /// reports the whole stream's length, not what is left).
    passes: usize,
}

impl<S: InstructionSource + Clone> InstructionSource for Repeat<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_inst(&mut self) -> Option<Instruction> {
        loop {
            let current = self.current.as_mut()?;
            if let Some(inst) = current.next_inst() {
                return Some(inst);
            }
            self.remaining -= 1;
            self.current = (self.remaining > 0).then(|| self.pristine.clone());
        }
    }

    fn len_hint(&self) -> Option<usize> {
        self.pristine.len_hint().map(|l| l * self.passes)
    }
}

/// The region an instruction of a [`WarmupMeasure`] stream belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The warm-up prefix (prime caches and predictors; exclude from
    /// reported statistics).
    Warmup,
    /// The measured region.
    Measure,
}

/// Warm-up/measure region markers: see [`SourceExt::warmup_measure`].
#[derive(Debug, Clone)]
pub struct WarmupMeasure<S> {
    inner: S,
    warmup: usize,
    measure: usize,
    emitted: usize,
}

impl<S> WarmupMeasure<S> {
    /// The region the instruction at stream position `id` belongs to.
    pub fn region_of(&self, id: InstId) -> Region {
        if id < self.warmup {
            Region::Warmup
        } else {
            Region::Measure
        }
    }

    /// Stream position of the first measured instruction.
    pub fn measure_start(&self) -> InstId {
        self.warmup
    }
}

impl<S: InstructionSource> InstructionSource for WarmupMeasure<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_inst(&mut self) -> Option<Instruction> {
        if self.emitted >= self.warmup + self.measure {
            return None;
        }
        let inst = self.inner.next_inst()?;
        self.emitted += 1;
        Some(inst)
    }

    fn len_hint(&self) -> Option<usize> {
        // Without an inner hint the stream might end before the cap, so no
        // exact length can be promised.
        let cap = self.warmup + self.measure;
        self.inner.len_hint().map(|l| l.min(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::op::OpKind;
    use crate::reg::ArchReg;

    fn numbered(name: &str, n: usize) -> Trace {
        let mut b = TraceBuilder::named(name);
        for i in 0..n {
            b.int_alu(ArchReg::int((i % 8) as u8), &[]);
        }
        b.finish()
    }

    fn drain(mut s: impl InstructionSource) -> Vec<Instruction> {
        let mut out = Vec::new();
        while let Some(i) = s.next_inst() {
            out.push(i);
        }
        out
    }

    #[test]
    fn materialized_trace_streams_the_trace_in_order() {
        let t = numbered("t", 5);
        let insts = drain(MaterializedTrace::new(&t));
        assert_eq!(insts.len(), 5);
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(*inst, t[i]);
        }
        assert_eq!(MaterializedTrace::new(&t).len_hint(), Some(5));
    }

    #[test]
    fn window_delivers_the_stream_with_ids() {
        let t = numbered("t", 4);
        let mut w = ReplayWindow::new(&t);
        assert_eq!(w.name(), "t");
        let mut ids = Vec::new();
        while let Some((id, inst)) = w.next_inst() {
            assert_eq!(inst, t[id]);
            ids.push(id);
        }
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(w.at_end());
        assert_eq!(w.fetched(), 4);
    }

    #[test]
    fn window_rewind_replays_buffered_instructions() {
        let t = numbered("t", 6);
        let mut w = ReplayWindow::new(&t);
        for _ in 0..4 {
            w.next_inst();
        }
        w.rewind_to(1);
        assert_eq!(w.position(), 1);
        let replayed: Vec<InstId> =
            std::iter::from_fn(|| w.next_inst().map(|(id, _)| id)).collect();
        assert_eq!(replayed, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn window_release_bounds_occupancy() {
        let t = numbered("t", 100);
        let mut w = ReplayWindow::new(&t);
        for i in 0..100usize {
            w.next_inst();
            // Retire everything older than 4 instructions behind fetch.
            w.release_to((i + 1).saturating_sub(4));
        }
        assert!(w.at_end());
        assert!(
            w.peak_occupancy() <= 5,
            "peak {} should track the release lag, not the stream",
            w.peak_occupancy()
        );
        assert_eq!(w.occupancy(), 4);
    }

    #[test]
    fn window_get_looks_up_buffered_ids() {
        let t = numbered("t", 10);
        let mut w = ReplayWindow::new(&t);
        for _ in 0..5 {
            w.next_inst();
        }
        assert_eq!(*w.get(2), t[2]);
        assert!(w.try_get(7).is_none(), "not fetched yet");
        w.release_to(3);
        assert!(w.try_get(2).is_none(), "released");
        assert_eq!(*w.get(3), t[3]);
    }

    #[test]
    #[should_panic(expected = "released from the replay window")]
    fn rewind_below_the_release_frontier_panics() {
        let t = numbered("t", 10);
        let mut w = ReplayWindow::new(&t);
        for _ in 0..6 {
            w.next_inst();
        }
        w.release_to(4);
        w.rewind_to(2);
    }

    #[test]
    #[should_panic(expected = "ahead of the fetch position")]
    fn rewind_ahead_of_fetch_panics() {
        let t = numbered("t", 10);
        let mut w = ReplayWindow::new(&t);
        w.next_inst();
        w.rewind_to(5);
    }

    #[test]
    fn release_is_clamped_and_monotonic() {
        let t = numbered("t", 10);
        let mut w = ReplayWindow::new(&t);
        for _ in 0..3 {
            w.next_inst();
        }
        w.release_to(100); // clamped to the fetch position
        assert_eq!(w.occupancy(), 0);
        w.release_to(1); // going backwards is a no-op
        let (id, inst) = w.next_inst().unwrap();
        assert_eq!((id, inst), (3, t[3]), "fetch resumes at position 3");
    }

    #[test]
    fn empty_source_is_immediately_at_end() {
        let t = Trace::new("empty");
        let mut w = ReplayWindow::new(&t);
        assert!(w.at_end());
        assert!(w.peek().is_none());
        assert!(w.next_inst().is_none());
        assert_eq!(w.fetched(), 0);
    }

    #[test]
    fn chain_concatenates_and_rebases_pcs() {
        let a = numbered("a", 3);
        let b = {
            let mut bld = TraceBuilder::named("b");
            bld.int_alu(ArchReg::int(0), &[]);
            bld.backward_branch(ArchReg::int(0), true);
            bld.finish()
        };
        let chained = MaterializedTrace::new(&a).then(MaterializedTrace::new(&b));
        assert_eq!(chained.name(), "a+b");
        assert_eq!(chained.len_hint(), Some(5));
        let insts = drain(chained);
        assert_eq!(insts.len(), 5);
        // First stream's pcs are 0,4,8; the second is rebased past them.
        assert_eq!(insts[3].pc, 12);
        assert_eq!(insts[4].pc, 16);
        let br = insts[4].branch.unwrap();
        assert!(br.target >= 12 || br.target == 0, "target rebased: {br:?}");
    }

    #[test]
    fn interleave_alternates_blocks_and_drains_tails() {
        let a = numbered("a", 5);
        let b = numbered("b", 2);
        let mixed = MaterializedTrace::new(&a).interleave(MaterializedTrace::new(&b), 2);
        assert_eq!(mixed.len_hint(), Some(7));
        let pcs: Vec<u64> = drain(mixed).iter().map(|i| i.pc).collect();
        // a: 0,4,8,12,16  b: 0,4 — blocks of two, then a's tail.
        assert_eq!(pcs, vec![0, 4, 0, 4, 8, 12, 16]);
    }

    #[test]
    fn repeat_replays_the_stream_with_repeating_pcs() {
        let t = numbered("t", 3);
        let r = MaterializedTrace::new(&t).repeat_n(3);
        assert_eq!(r.name(), "t*3");
        assert_eq!(r.len_hint(), Some(9));
        let insts = drain(r);
        assert_eq!(insts.len(), 9);
        assert_eq!(insts[0].pc, insts[3].pc);
        assert_eq!(insts[2].pc, insts[8].pc);
        let empty = MaterializedTrace::new(&t).repeat_n(0);
        assert_eq!(empty.len_hint(), Some(0), "zero passes is an empty stream");
        assert!(drain(empty).is_empty());
    }

    #[test]
    fn warmup_measure_truncates_and_classifies() {
        let t = numbered("t", 100);
        let wm = MaterializedTrace::new(&t).warmup_measure(10, 20);
        assert_eq!(wm.len_hint(), Some(30));
        assert_eq!(wm.region_of(9), Region::Warmup);
        assert_eq!(wm.region_of(10), Region::Measure);
        assert_eq!(wm.measure_start(), 10);
        assert_eq!(drain(wm).len(), 30);
    }

    #[test]
    fn combinators_compose() {
        let t = numbered("t", 4);
        let s = MaterializedTrace::new(&t)
            .repeat_n(2)
            .then(MaterializedTrace::new(&t))
            .warmup_measure(3, 6);
        let insts = drain(s);
        assert_eq!(insts.len(), 9);
        assert!(insts.iter().all(|i| i.kind == OpKind::IntAlu));
    }

    #[test]
    fn fork_lanes_each_see_the_whole_stream() {
        let t = numbered("t", 20);
        let lanes = StreamFork::split(&t, 3);
        assert_eq!(lanes.len(), 3);
        for lane in lanes {
            assert_eq!(lane.name(), "t");
            assert_eq!(lane.len_hint(), Some(20));
            let insts = drain(lane);
            assert_eq!(insts.len(), 20);
            for (i, inst) in insts.iter().enumerate() {
                assert_eq!(*inst, t[i]);
            }
        }
    }

    #[test]
    fn fork_frontier_releases_below_the_minimum_lane() {
        let len = 400;
        let t = numbered("t", len);
        let mut lanes = StreamFork::split(&t, 2);
        let (a, b) = {
            let mut it = lanes.drain(..);
            (it.next().unwrap(), it.next().unwrap())
        };
        let mut a = a;
        let mut b = b;
        // Round-robin with a delivered skew of at most 8: the shared buffer
        // must track the skew plus the lanes' read-ahead batches, never the
        // stream.
        let bound = 8 + 4 + 2 * LANE_BATCH;
        for round in 0..(len / 4) {
            for _ in 0..4 {
                a.next_inst();
            }
            assert!(
                a.shared_occupancy() <= bound,
                "occupancy {} at round {round} should be bounded by skew + batches",
                a.shared_occupancy()
            );
            for _ in 0..4 {
                b.next_inst();
            }
        }
        assert!(a.next_inst().is_none() && b.next_inst().is_none());
        assert!(
            a.shared_peak() <= bound,
            "peak {} must stay well below the {len}-instruction stream",
            a.shared_peak()
        );
        assert_eq!(a.shared_occupancy(), 0, "fully drained fork is empty");
    }

    #[test]
    fn fork_single_lane_matches_the_undivided_source() {
        let t = numbered("t", 10);
        let mut lanes = StreamFork::split(&t, 1);
        let lane = lanes.pop().unwrap();
        assert_eq!(lane.position(), 0);
        let insts = drain(MaterializedTrace::new(&t));
        let forked = {
            let mut lanes = StreamFork::split(&t, 1);
            drain(lanes.pop().unwrap())
        };
        assert_eq!(insts, forked);
    }

    #[test]
    fn fork_zero_lanes_is_empty() {
        let t = numbered("t", 4);
        assert!(StreamFork::split(&t, 0).is_empty());
    }

    #[test]
    fn fork_feeds_replay_windows_with_independent_rewinds() {
        let t = numbered("t", 12);
        let mut lanes = StreamFork::split(&t, 2);
        let mut wb = ReplayWindow::new(lanes.pop().unwrap());
        let mut wa = ReplayWindow::new(lanes.pop().unwrap());
        for _ in 0..6 {
            wa.next_inst();
        }
        for _ in 0..3 {
            wb.next_inst();
        }
        wa.rewind_to(2);
        let (id, inst) = wa.next_inst().unwrap();
        assert_eq!((id, inst), (2, t[2]));
        // Lane B's stream is unaffected by lane A's rewind.
        let (id, inst) = wb.next_inst().unwrap();
        assert_eq!((id, inst), (3, t[3]));
    }

    #[test]
    fn window_over_a_combinator_stream_rewinds_fine() {
        let t = numbered("t", 4);
        let mut w = ReplayWindow::new(MaterializedTrace::new(&t).repeat_n(2));
        let first: Vec<InstId> = std::iter::from_fn(|| w.next_inst().map(|(id, _)| id)).collect();
        assert_eq!(first.len(), 8);
        w.rewind_to(5);
        assert_eq!(w.next_inst().unwrap().0, 5);
    }
}
