//! Dynamic instructions: one executed micro-op of a trace.

use crate::op::OpKind;
use crate::reg::ArchReg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of register sources a dynamic instruction may have.
///
/// Two operand sources plus, for stores, the data register.
pub const MAX_SRCS: usize = 3;

/// A memory access performed by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Byte address accessed.
    pub addr: u64,
    /// Access size in bytes (8 for the FP doubles the workloads use).
    pub size: u8,
}

impl MemAccess {
    /// Creates a memory access descriptor.
    pub fn new(addr: u64, size: u8) -> Self {
        MemAccess { addr, size }
    }

    /// The cache-line address for a given line size.
    pub fn line_addr(&self, line_bytes: u64) -> u64 {
        self.addr / line_bytes
    }
}

/// The resolved outcome of a branch in the dynamic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the branch was actually taken.
    pub taken: bool,
    /// Target program counter if taken.
    pub target: u64,
    /// Whether this branch is an unconditional jump / call / return.
    pub unconditional: bool,
}

impl BranchInfo {
    /// A conditional branch with the given outcome and target.
    pub fn conditional(taken: bool, target: u64) -> Self {
        BranchInfo {
            taken,
            target,
            unconditional: false,
        }
    }

    /// An unconditional (always taken) branch.
    pub fn unconditional(target: u64) -> Self {
        BranchInfo {
            taken: true,
            target,
            unconditional: true,
        }
    }
}

/// One dynamic instruction of a trace.
///
/// The simulator is trace driven: register *values* are not modelled, only
/// dependences (via architectural register names), memory addresses and
/// branch outcomes — everything the pipeline timing depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// Program counter of the instruction (used by the branch predictor).
    pub pc: u64,
    /// Operation class.
    pub kind: OpKind,
    /// Destination register, if the operation writes one.
    pub dest: Option<ArchReg>,
    /// Source registers (up to [`MAX_SRCS`]); `None` entries are unused slots.
    pub srcs: [Option<ArchReg>; MAX_SRCS],
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Branch outcome, for branches.
    pub branch: Option<BranchInfo>,
    /// When set, the instruction raises an exception at execute; used by
    /// tests to exercise precise-state recovery.
    pub raises_exception: bool,
}

impl Instruction {
    /// Creates a non-memory, non-branch instruction.
    ///
    /// # Panics
    /// Panics if more than [`MAX_SRCS`] sources are supplied.
    pub fn op(pc: u64, kind: OpKind, dest: Option<ArchReg>, srcs: &[ArchReg]) -> Self {
        assert!(srcs.len() <= MAX_SRCS, "too many sources: {}", srcs.len());
        let mut s = [None; MAX_SRCS];
        for (slot, &r) in s.iter_mut().zip(srcs.iter()) {
            *slot = Some(r);
        }
        Instruction {
            pc,
            kind,
            dest,
            srcs: s,
            mem: None,
            branch: None,
            raises_exception: false,
        }
    }

    /// Creates a load of `dest` from `[base]` at byte address `addr`.
    pub fn load(pc: u64, dest: ArchReg, base: ArchReg, addr: u64) -> Self {
        let mut i = Instruction::op(pc, OpKind::Load, Some(dest), &[base]);
        i.mem = Some(MemAccess::new(addr, 8));
        i
    }

    /// Creates a store of `data` to `[base]` at byte address `addr`.
    pub fn store(pc: u64, data: ArchReg, base: ArchReg, addr: u64) -> Self {
        let mut i = Instruction::op(pc, OpKind::Store, None, &[base, data]);
        i.mem = Some(MemAccess::new(addr, 8));
        i
    }

    /// Creates a conditional branch depending on `cond`.
    pub fn branch(pc: u64, cond: ArchReg, taken: bool, target: u64) -> Self {
        let mut i = Instruction::op(pc, OpKind::Branch, None, &[cond]);
        i.branch = Some(BranchInfo::conditional(taken, target));
        i
    }

    /// Iterates over the used source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Number of used source registers.
    pub fn num_sources(&self) -> usize {
        self.srcs.iter().flatten().count()
    }

    /// Whether the instruction writes a destination register.
    pub fn writes_register(&self) -> bool {
        self.dest.is_some()
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        self.kind == OpKind::Load
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        self.kind == OpKind::Store
    }

    /// Whether this is a branch.
    pub fn is_branch(&self) -> bool {
        self.kind == OpKind::Branch
    }

    /// Marks the instruction as exception-raising (builder style).
    pub fn with_exception(mut self) -> Self {
        self.raises_exception = true;
        self
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.kind)?;
        if let Some(d) = self.dest {
            write!(f, " {d} <-")?;
        }
        for s in self.sources() {
            write!(f, " {s}")?;
        }
        if let Some(m) = &self.mem {
            write!(f, " [{:#x}]", m.addr)?;
        }
        if let Some(b) = &self.branch {
            write!(f, " ({})", if b.taken { "taken" } else { "not-taken" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructor_fills_sources_in_order() {
        let i = Instruction::op(
            0x10,
            OpKind::FpAlu,
            Some(ArchReg::fp(1)),
            &[ArchReg::fp(2), ArchReg::fp(3)],
        );
        assert_eq!(i.num_sources(), 2);
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![ArchReg::fp(2), ArchReg::fp(3)]);
        assert!(i.writes_register());
        assert!(!i.is_load());
    }

    #[test]
    fn load_carries_memory_access_and_dest() {
        let i = Instruction::load(0x20, ArchReg::fp(4), ArchReg::int(2), 0x8000);
        assert!(i.is_load());
        assert_eq!(i.mem.unwrap().addr, 0x8000);
        assert_eq!(i.dest, Some(ArchReg::fp(4)));
        assert_eq!(i.num_sources(), 1);
    }

    #[test]
    fn store_has_no_destination_but_two_sources() {
        let i = Instruction::store(0x24, ArchReg::fp(4), ArchReg::int(2), 0x8008);
        assert!(i.is_store());
        assert!(!i.writes_register());
        assert_eq!(i.num_sources(), 2);
    }

    #[test]
    fn branch_records_outcome() {
        let i = Instruction::branch(0x30, ArchReg::int(1), true, 0x10);
        assert!(i.is_branch());
        assert!(i.branch.unwrap().taken);
        assert_eq!(i.branch.unwrap().target, 0x10);
        assert!(!i.branch.unwrap().unconditional);
    }

    #[test]
    fn line_addr_divides_by_line_size() {
        let m = MemAccess::new(0x1040, 8);
        assert_eq!(m.line_addr(64), 0x41);
        assert_eq!(m.line_addr(32), 0x82);
    }

    #[test]
    fn exception_flag_is_builder_style() {
        let i = Instruction::op(0, OpKind::IntAlu, Some(ArchReg::int(1)), &[]).with_exception();
        assert!(i.raises_exception);
    }

    #[test]
    #[should_panic(expected = "too many sources")]
    fn too_many_sources_panics() {
        let r = ArchReg::int(1);
        let _ = Instruction::op(0, OpKind::IntAlu, None, &[r, r, r, r]);
    }

    #[test]
    fn display_mentions_kind_and_registers() {
        let i = Instruction::load(0x20, ArchReg::fp(4), ArchReg::int(2), 0x8000);
        let s = i.to_string();
        assert!(s.contains("load"));
        assert!(s.contains("F4"));
        assert!(s.contains("0x8000"));
    }
}
