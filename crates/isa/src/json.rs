//! A minimal JSON reader shared by every crate that parses the workspace's
//! JSON artifacts (saved traces, bench reports).
//!
//! The workspace serde stub only *writes* JSON, so reading is hand-rolled:
//! [`parse_json`] produces a [`Json`] tree with just enough accessors to
//! decode the repository's formats. Integers that fit `u64` are kept exact
//! ([`Json::Int`]) rather than routed through `f64`, so 64-bit counters and
//! addresses round-trip bit for bit.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact (never widened
    /// through `f64`, which silently rounds above 2^53).
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer: [`Json::Int`] directly, or a
    /// [`Json::Num`] that happens to be a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float ([`Json::Int`] is widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Maximum container nesting accepted by [`parse_json`]. The parser is
/// recursive-descent, so without this cap a hostile document of a few
/// kilobytes of `[` overflows the stack (an abort, not a catchable error).
/// No workspace artifact nests deeper than a dozen levels.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document.
///
/// # Errors
/// Returns a description of the first syntax error, with a byte offset.
/// Documents nested deeper than [`MAX_DEPTH`] are rejected rather than
/// recursed into.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

/// Parses a versioned workspace artifact: a JSON object whose `"schema"`
/// field must equal `schema`. This is the shared front door for every
/// on-disk and on-wire format (`koc-trace/1`, `koc-bench-harness/1`,
/// `koc-serve/1`, ...), so schema mismatches fail uniformly and early.
///
/// # Errors
/// Returns the underlying syntax error, or a description of the missing or
/// mismatched `"schema"` field.
pub fn parse_versioned(text: &str, schema: &str) -> Result<Json, String> {
    let value = parse_json(text)?;
    match value.get("schema").and_then(Json::as_str) {
        Some(found) if found == schema => Ok(value),
        Some(found) => Err(format!(
            "schema mismatch: expected '{schema}', found '{found}'"
        )),
        None => match value {
            Json::Obj(_) => Err(format!("missing 'schema' field (expected '{schema}')")),
            _ => Err(format!(
                "expected a '{schema}' object, found a non-object document"
            )),
        },
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} levels at byte {pos}"
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let Json::Str(key) = parse_value(bytes, pos, depth + 1)? else {
                    return Err(format!("object key must be a string at byte {pos}"));
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "non-ASCII \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                                s.push(
                                    char::from_u32(code)
                                        .ok_or(format!("invalid code point {code:#x}"))?,
                                );
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&b) if b < 0x80 => {
                        s.push(b as char);
                        *pos += 1;
                    }
                    Some(_) => {
                        // Multi-byte UTF-8: copy the whole code point.
                        let rest = std::str::from_utf8(&bytes[*pos..])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        let c = rest.chars().next().expect("non-empty"); // koc-lint: allow(panic, "from_utf8 succeeded on a non-empty suffix")
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while bytes.get(*pos).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII"); // koc-lint: allow(panic, "the scanned range is ASCII digits and signs")
                                                                                 // Keep integers exact; only genuine floats go through f64.
            if let Ok(i) = text.parse::<u64>() {
                return Ok(Json::Int(i));
            }
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": [1, 2.5, "x\n\"y\""], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![
                Json::Int(1),
                Json::Num(2.5),
                Json::Str("x\n\"y\"".to_string()),
            ])
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("[1] trailing").is_err());
    }

    #[test]
    fn integers_beyond_f64_precision_stay_exact() {
        let big = u64::MAX - 1;
        let v = parse_json(&format!("[{big}, 9007199254740993]")).unwrap();
        let Json::Arr(items) = v else { panic!() };
        assert_eq!(items[0].as_u64(), Some(big));
        assert_eq!(items[1].as_u64(), Some(9_007_199_254_740_993));
        // The same values through f64 would have rounded.
        assert_ne!(9_007_199_254_740_993f64 as u64, 9_007_199_254_740_993);
    }

    #[test]
    fn hostile_nesting_is_rejected_not_overflowed() {
        // Deep enough to smash the stack if the parser recursed into it.
        let bomb = "[".repeat(200_000);
        let err = parse_json(&bomb).unwrap_err();
        assert!(err.contains("nesting deeper than"), "{err}");
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(parse_json(&obj_bomb).is_err());
        // Anything at or under the cap still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn parse_versioned_checks_the_schema_field() {
        assert!(parse_versioned(r#"{"schema":"koc-x/1","v":1}"#, "koc-x/1").is_ok());
        let err = parse_versioned(r#"{"schema":"koc-x/2"}"#, "koc-x/1").unwrap_err();
        assert!(err.contains("expected 'koc-x/1'"), "{err}");
        let err = parse_versioned(r#"{"v":1}"#, "koc-x/1").unwrap_err();
        assert!(err.contains("missing 'schema'"), "{err}");
        let err = parse_versioned("[1,2]", "koc-x/1").unwrap_err();
        assert!(err.contains("non-object"), "{err}");
        assert!(parse_versioned("{", "koc-x/1").is_err());
    }

    #[test]
    fn negative_and_scientific_numbers_parse_as_floats() {
        let v = parse_json("[-3, 1e3, -2.5]").unwrap();
        let Json::Arr(items) = v else { panic!() };
        assert_eq!(items[0].as_f64(), Some(-3.0));
        assert_eq!(items[0].as_u64(), None, "negative is not a u64");
        assert_eq!(items[1].as_f64(), Some(1000.0));
        assert_eq!(items[1].as_u64(), Some(1000), "whole float still reads");
        assert_eq!(items[2].as_u64(), None);
    }
}
