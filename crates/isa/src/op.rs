//! Operation kinds, functional-unit classes and execution latencies.
//!
//! Latencies and functional-unit counts follow Table 1 of the paper:
//!
//! | Unit                  | count | latency / repeat |
//! |-----------------------|-------|------------------|
//! | Integer general units | 4     | 1 / 1            |
//! | Integer mult units    | 2     | 3 / 1            |
//! | Integer div units     | 2 (shared with mult) | 20 / 20 |
//! | FP functional units   | 4     | 2 / 1            |
//! | Memory ports          | 2     | cache-dependent  |

use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation class of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Simple integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/mul/compare (the paper models a single 2-cycle FP unit class).
    FpAlu,
    /// Floating-point divide / square root (long latency, unpipelined).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional branch.
    Branch,
    /// No-operation (used for padding in hand-written tests).
    Nop,
}

impl OpKind {
    /// Returns `true` for loads and stores.
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Returns `true` for branches.
    pub fn is_branch(self) -> bool {
        matches!(self, OpKind::Branch)
    }

    /// Returns `true` if the operation produces a floating-point result or
    /// consumes floating-point sources (used to steer instructions to the
    /// floating-point instruction queue).
    pub fn is_fp(self) -> bool {
        matches!(self, OpKind::FpAlu | OpKind::FpDiv)
    }

    /// The functional-unit class this operation issues to.
    pub fn fu_class(self) -> FuClass {
        match self {
            OpKind::IntAlu | OpKind::Branch | OpKind::Nop => FuClass::IntAlu,
            OpKind::IntMul | OpKind::IntDiv => FuClass::IntMul,
            OpKind::FpAlu | OpKind::FpDiv => FuClass::Fp,
            OpKind::Load | OpKind::Store => FuClass::Mem,
        }
    }

    /// The fixed execution latency of this operation in cycles, excluding any
    /// memory-hierarchy latency (loads add the cache access latency on top).
    pub fn latency(self) -> OpLatency {
        match self {
            OpKind::IntAlu | OpKind::Branch | OpKind::Nop => OpLatency::new(1, 1),
            OpKind::IntMul => OpLatency::new(3, 1),
            OpKind::IntDiv => OpLatency::new(20, 20),
            OpKind::FpAlu => OpLatency::new(2, 1),
            OpKind::FpDiv => OpLatency::new(12, 12),
            // Loads/stores: 1 cycle address generation; the memory hierarchy
            // adds the access latency.
            OpKind::Load | OpKind::Store => OpLatency::new(1, 1),
        }
    }

    /// Every operation kind, useful for exhaustive tests.
    pub fn all() -> &'static [OpKind] {
        &[
            OpKind::IntAlu,
            OpKind::IntMul,
            OpKind::IntDiv,
            OpKind::FpAlu,
            OpKind::FpDiv,
            OpKind::Load,
            OpKind::Store,
            OpKind::Branch,
            OpKind::Nop,
        ]
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::IntAlu => "int-alu",
            OpKind::IntMul => "int-mul",
            OpKind::IntDiv => "int-div",
            OpKind::FpAlu => "fp-alu",
            OpKind::FpDiv => "fp-div",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Branch => "branch",
            OpKind::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// The class of functional unit an operation issues to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Integer general-purpose ALUs (4 in Table 1).
    IntAlu,
    /// Integer multiply/divide units (2 in Table 1).
    IntMul,
    /// Floating-point units (4 in Table 1).
    Fp,
    /// Memory ports (2 in Table 1).
    Mem,
}

impl FuClass {
    /// All functional-unit classes.
    pub fn all() -> &'static [FuClass] {
        &[FuClass::IntAlu, FuClass::IntMul, FuClass::Fp, FuClass::Mem]
    }

    /// Index of this class into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            FuClass::IntAlu => 0,
            FuClass::IntMul => 1,
            FuClass::Fp => 2,
            FuClass::Mem => 3,
        }
    }

    /// The number of distinct functional-unit classes.
    pub const COUNT: usize = 4;
}

/// Execution latency and repeat (initiation) interval of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpLatency {
    /// Cycles from issue until the result is available.
    pub latency: u32,
    /// Cycles before the functional unit can accept another operation.
    pub repeat: u32,
}

impl OpLatency {
    /// Creates a latency/repeat pair.
    pub fn new(latency: u32, repeat: u32) -> Self {
        OpLatency { latency, repeat }
    }

    /// Whether the unit is fully pipelined for this operation.
    pub fn is_pipelined(self) -> bool {
        self.repeat == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies() {
        assert_eq!(OpKind::IntAlu.latency(), OpLatency::new(1, 1));
        assert_eq!(OpKind::IntMul.latency(), OpLatency::new(3, 1));
        assert_eq!(OpKind::IntDiv.latency(), OpLatency::new(20, 20));
        assert_eq!(OpKind::FpAlu.latency(), OpLatency::new(2, 1));
    }

    #[test]
    fn memory_ops_are_classified() {
        assert!(OpKind::Load.is_memory());
        assert!(OpKind::Store.is_memory());
        assert!(!OpKind::FpAlu.is_memory());
        assert_eq!(OpKind::Load.fu_class(), FuClass::Mem);
        assert_eq!(OpKind::Store.fu_class(), FuClass::Mem);
    }

    #[test]
    fn fp_ops_are_classified() {
        assert!(OpKind::FpAlu.is_fp());
        assert!(OpKind::FpDiv.is_fp());
        assert!(!OpKind::Load.is_fp());
        assert_eq!(OpKind::FpAlu.fu_class(), FuClass::Fp);
    }

    #[test]
    fn branches_use_int_alu() {
        assert!(OpKind::Branch.is_branch());
        assert_eq!(OpKind::Branch.fu_class(), FuClass::IntAlu);
    }

    #[test]
    fn fu_class_indices_are_unique_and_dense() {
        let mut seen = [false; FuClass::COUNT];
        for c in FuClass::all() {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unpipelined_ops_report_it() {
        assert!(!OpKind::IntDiv.latency().is_pipelined());
        assert!(OpKind::IntAlu.latency().is_pipelined());
    }

    #[test]
    fn all_kinds_listed_once() {
        let all = OpKind::all();
        assert_eq!(all.len(), 9);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_is_nonempty_for_all_kinds() {
        for k in OpKind::all() {
            assert!(!k.to_string().is_empty());
        }
    }
}
