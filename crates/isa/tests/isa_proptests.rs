//! Property-based tests for the instruction and trace model.

use koc_isa::{ArchReg, Instruction, OpKind, Trace, TraceBuilder, NUM_ARCH_REGS};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = ArchReg> {
    (0..NUM_ARCH_REGS).prop_map(ArchReg::from_flat_index)
}

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::IntAlu),
        Just(OpKind::IntMul),
        Just(OpKind::FpAlu),
        Just(OpKind::Load),
        Just(OpKind::Store),
        Just(OpKind::Branch),
    ]
}

proptest! {
    #[test]
    fn flat_index_round_trips(idx in 0..NUM_ARCH_REGS) {
        let r = ArchReg::from_flat_index(idx);
        prop_assert_eq!(r.flat_index(), idx);
        prop_assert!(r.number() < 32);
    }

    #[test]
    fn register_class_partitions_the_space(idx in 0..NUM_ARCH_REGS) {
        let r = ArchReg::from_flat_index(idx);
        match r.class() {
            koc_isa::RegClass::Int => prop_assert!(idx < 32),
            koc_isa::RegClass::Fp => prop_assert!(idx >= 32),
        }
    }

    #[test]
    fn op_constructor_preserves_sources(kind in arb_kind(), dest in arb_reg(), srcs in proptest::collection::vec(arb_reg(), 0..3)) {
        let inst = Instruction::op(0x40, kind, Some(dest), &srcs);
        prop_assert_eq!(inst.num_sources(), srcs.len());
        let collected: Vec<_> = inst.sources().collect();
        prop_assert_eq!(collected, srcs);
        prop_assert_eq!(inst.dest, Some(dest));
    }

    #[test]
    fn latencies_are_positive_and_repeat_at_most_latency(kind in arb_kind()) {
        let l = kind.latency();
        prop_assert!(l.latency >= 1);
        prop_assert!(l.repeat >= 1);
        prop_assert!(l.repeat <= l.latency);
    }

    #[test]
    fn cursor_rewind_is_idempotent(n in 1usize..200, rewind in 0usize..200) {
        let mut b = TraceBuilder::new();
        for _ in 0..n {
            b.nop();
        }
        let trace = b.finish();
        let mut cursor = trace.cursor();
        while cursor.next_inst().is_some() {}
        let target = rewind.min(trace.len());
        cursor.rewind_to(target);
        prop_assert_eq!(cursor.position(), target);
        let mut count = 0;
        while cursor.next_inst().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, trace.len() - target);
    }

    #[test]
    fn trace_mix_totals_match_length(kinds in proptest::collection::vec(arb_kind(), 0..300)) {
        let mut trace = Trace::new("mix");
        for (i, kind) in kinds.iter().enumerate() {
            let inst = match kind {
                OpKind::Load => Instruction::load(i as u64 * 4, ArchReg::fp(1), ArchReg::int(1), 0x100),
                OpKind::Store => Instruction::store(i as u64 * 4, ArchReg::fp(1), ArchReg::int(1), 0x100),
                OpKind::Branch => Instruction::branch(i as u64 * 4, ArchReg::int(1), true, 0),
                k => Instruction::op(i as u64 * 4, *k, Some(ArchReg::int(2)), &[]),
            };
            trace.push(inst);
        }
        let mix = trace.mix();
        prop_assert_eq!(mix.total, kinds.len());
        prop_assert_eq!(mix.loads + mix.stores + mix.branches + mix.fp_ops + mix.int_ops, mix.total);
    }
}
