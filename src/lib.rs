//! # koc — *Out-of-Order Commit Processors* (HPCA 2004) reproduction
//!
//! Umbrella crate re-exporting the workspace members, so downstream code
//! (and the repository-level `examples/` and `tests/`) can reach everything
//! through one dependency:
//!
//! * [`isa`] — instruction set, traces and the trace builder,
//! * [`frontend`] — branch predictors,
//! * [`mem`] — the Table 1 cache hierarchy,
//! * [`core`] — the paper's mechanisms (CAM rename, checkpoints, pseudo-ROB,
//!   SLIQ) and the conventional window structures,
//! * [`workloads`] — the synthetic SPEC2000fp-like suite,
//! * [`sim`] — the pipeline, the pluggable [`sim::CommitEngine`] and the
//!   fluent [`sim::SimBuilder`] / [`sim::Session`] / [`sim::Sweep`] API,
//! * [`obs`] — the zero-perturbation observability layer: the
//!   [`obs::Observer`] seam plus the pipeline event tracer, the interval
//!   time-series recorder and top-down cycle accounting,
//! * [`serve`] — the simulator as a fault-tolerant TCP job service with a
//!   crash-safe result cache and a deterministic fault-injection harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use koc_core as core;
pub use koc_frontend as frontend;
pub use koc_isa as isa;
pub use koc_mem as mem;
pub use koc_obs as obs;
pub use koc_serve as serve;
pub use koc_sim as sim;
pub use koc_workloads as workloads;
