//! Pipeline event tracing: attach the [`PipelineTracer`] observer to a run
//! and render the per-instruction lifecycle as Kanata text (loadable in the
//! Konata pipeline viewer) and as `koc-ptrace/1` JSON.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```
//!
//! The observer is the simulator's fourth seam, next to the configuration,
//! the instruction source and the commit engine: it is a generic parameter
//! of the pipeline, so a run built without one (`Processor::new`) compiles
//! the hooks away entirely and remains bit- and cycle-identical.

use koc_sim::{PipelineTracer, Processor, ProcessorConfig};
use koc_workloads::{kernels, Workload};

fn main() {
    let workload = Workload::generate("gather", kernels::gather(), 300);
    let config = ProcessorConfig::cooo(32, 512, 200);
    let (stats, tracer) =
        Processor::with_observer(config, &workload.trace, PipelineTracer::new()).run_observed();
    println!(
        "traced {} instructions over {} cycles: {} pipeline events\n",
        stats.committed_instructions,
        stats.cycles,
        tracer.len()
    );

    // Kanata text: save it and open with Konata
    // (https://github.com/shioyadan/Konata) to scroll the pipeline visually.
    let kanata = tracer.to_kanata();
    println!("--- first lines of the Kanata rendering ---");
    for line in kanata.lines().take(12) {
        println!("{line}");
    }
    let path = std::env::temp_dir().join("koc_pipeline_trace.kanata");
    std::fs::write(&path, &kanata).expect("write kanata file");
    println!("\nfull Kanata trace written to {}", path.display());

    // koc-ptrace/1 JSON: one flat object per event, for ad-hoc analysis.
    let json = tracer.to_ptrace_json();
    println!(
        "koc-ptrace/1 JSON is {} bytes; first 200: {}…",
        json.len(),
        &json[..200.min(json.len())]
    );
}
