//! Kilo-instruction windows on a budget: the paper's main comparison
//! (Figure 9, condensed). A checkpointed out-of-order commit processor with
//! small instruction queues and a cheap SLIQ approaches an (unbuildable)
//! conventional machine with 4096-entry structures.
//!
//! ```text
//! cargo run --release --example kilo_window
//! ```

use koc_sim::{run_workloads, ProcessorConfig};
use koc_workloads::spec2000fp_like_suite;

fn main() {
    let workloads = spec2000fp_like_suite(15_000);
    let memory_latency = 1000;

    let baseline_small = run_workloads(ProcessorConfig::baseline(128, memory_latency), &workloads);
    let baseline_huge = run_workloads(ProcessorConfig::baseline(4096, memory_latency), &workloads);

    println!("reference lines (conventional in-order commit):");
    println!("  128-entry ROB + IQ : {:.3} IPC", baseline_small.mean_ipc());
    println!("  4096-entry ROB + IQ: {:.3} IPC  (not implementable)", baseline_huge.mean_ipc());
    println!();
    println!("out-of-order commit processors (8 checkpoints):");
    println!("{:>8} {:>8} {:>10} {:>14} {:>16}", "IQ", "SLIQ", "IPC", "vs 128-entry", "avg in-flight");
    println!("{:-<60}", "");

    for sliq in [512usize, 1024, 2048] {
        for iq in [32usize, 64, 128] {
            let r = run_workloads(ProcessorConfig::cooo(iq, sliq, memory_latency), &workloads);
            println!(
                "{:>8} {:>8} {:>10.3} {:>13.0}% {:>16.0}",
                iq,
                sliq,
                r.mean_ipc(),
                100.0 * (r.mean_ipc() / baseline_small.mean_ipc() - 1.0),
                r.mean_inflight()
            );
        }
    }

    println!();
    println!("The largest configuration keeps thousands of instructions in flight with only an");
    println!("8-entry checkpoint table, 128-entry queues and a RAM-like SLIQ.");
}
