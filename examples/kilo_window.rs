//! Kilo-instruction windows on a budget: the paper's main comparison
//! (Figure 9, condensed). A checkpointed out-of-order commit processor with
//! small instruction queues and a cheap SLIQ approaches an (unbuildable)
//! conventional machine with 4096-entry structures.
//!
//! ```text
//! cargo run --release --example kilo_window
//! ```

use koc_sim::{ProcessorConfig, Suite, Sweep};

fn main() {
    let memory_latency = 1000;
    let sliq_sizes = [512usize, 1024, 2048];
    let iq_sizes = [32usize, 64, 128];

    // The whole figure is one grid: two reference baselines plus the nine
    // proposal configurations, fanned out over all cores by the sweep.
    let configs = [
        ProcessorConfig::baseline(128, memory_latency),
        ProcessorConfig::baseline(4096, memory_latency),
    ]
    .into_iter()
    .chain(sliq_sizes.iter().flat_map(|&sliq| {
        iq_sizes
            .iter()
            .map(move |&iq| ProcessorConfig::cooo(iq, sliq, memory_latency))
    }));
    let results = Sweep::over(configs)
        .workloads(Suite::paper())
        .trace_len(15_000)
        .run();
    let (baseline_small, baseline_huge) = (&results[0], &results[1]);

    println!("reference lines (conventional in-order commit):");
    println!(
        "  128-entry ROB + IQ : {:.3} IPC",
        baseline_small.mean_ipc()
    );
    println!(
        "  4096-entry ROB + IQ: {:.3} IPC  (not implementable)",
        baseline_huge.mean_ipc()
    );
    println!();
    println!("out-of-order commit processors (8 checkpoints):");
    println!(
        "{:>8} {:>8} {:>10} {:>14} {:>16}",
        "IQ", "SLIQ", "IPC", "vs 128-entry", "avg in-flight"
    );
    println!("{:-<60}", "");

    let mut cooo = results[2..].iter();
    for sliq in sliq_sizes {
        for iq in iq_sizes {
            let r = cooo.next().expect("one result per configuration");
            println!(
                "{:>8} {:>8} {:>10.3} {:>13.0}% {:>16.0}",
                iq,
                sliq,
                r.mean_ipc(),
                100.0 * (r.mean_ipc() / baseline_small.mean_ipc() - 1.0),
                r.mean_inflight()
            );
        }
    }

    println!();
    println!("The largest configuration keeps thousands of instructions in flight with only an");
    println!("8-entry checkpoint table, 128-entry queues and a RAM-like SLIQ.");
}
