//! Quickstart: simulate one SPEC2000fp-like kernel on the baseline machine
//! and on the paper's checkpointed out-of-order commit machine, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use koc_sim::{ProcessorConfig, Suite, Sweep};
use koc_workloads::{kernels, Workload};

fn main() {
    // A swim-like streaming kernel: unit-stride loads over arrays much larger
    // than the L2 cache, abundant independent FP work.
    let workload = Workload::generate("stream_add", kernels::stream_add(), 20_000);
    println!(
        "workload: {} ({} dynamic instructions)",
        workload.name,
        workload.trace.len()
    );
    println!("instruction mix: {:?}", workload.trace.mix());
    println!();

    // Three machines, run in parallel as one sweep:
    // - a realistic conventional processor: 128-entry ROB and instruction
    //   queues, 1000 cycles to main memory (Table 1),
    // - an unrealistic conventional processor with 4096-entry structures
    //   (the paper's upper reference line),
    // - the paper's proposal: 8 checkpoints, 128-entry pseudo-ROB and
    //   instruction queues, 2048-entry SLIQ.
    let results = Sweep::over([
        ProcessorConfig::baseline(128, 1000),
        ProcessorConfig::baseline(4096, 1000),
        ProcessorConfig::cooo(128, 2048, 1000),
    ])
    .workloads(Suite::custom(vec![workload]))
    .run();
    let (small, huge, cooo) = (
        &results[0].per_workload[0].stats,
        &results[1].per_workload[0].stats,
        &results[2].per_workload[0].stats,
    );

    println!(
        "{:<50} {:>8} {:>14}",
        "configuration", "IPC", "avg in-flight"
    );
    println!("{:-<74}", "");
    for (name, stats) in [
        ("baseline, 128-entry ROB + IQ", small),
        ("baseline, 4096-entry ROB + IQ (unrealistic)", huge),
        ("out-of-order commit, 8 ckpts + 128 IQ + 2048 SLIQ", cooo),
    ] {
        println!(
            "{:<50} {:>8.3} {:>14.0}",
            name,
            stats.ipc(),
            stats.avg_inflight()
        );
    }
    println!();
    println!(
        "speed-up of out-of-order commit over the 128-entry baseline: {:.2}x",
        cooo.ipc() / small.ipc()
    );
    println!(
        "fraction of the unrealistic 4096-entry machine reached:      {:.0}%",
        100.0 * cooo.ipc() / huge.ipc()
    );
    println!(
        "checkpoints taken: {}, instructions moved to the SLIQ: {}",
        cooo.checkpoints_taken, cooo.sliq_moved
    );
}
