//! Checkpoint tuning (the paper's Figure 13, condensed): how many checkpoints
//! does out-of-order commit actually need, and what does the checkpoint
//! placement policy cost?
//!
//! ```text
//! cargo run --release --example checkpoint_tuning
//! ```

use koc_core::CheckpointPolicy;
use koc_sim::{SimBuilder, Suite, Sweep};

fn main() {
    let trace_len = 12_000;
    let checkpoint_counts = [4usize, 8, 16, 32, 64, 128];
    let cooo = SimBuilder::cooo();

    // The paper's limit reference (a 4096-entry conventional machine), then
    // the checkpoint-count sweep — one parallel grid.
    let configs = std::iter::once(*SimBuilder::baseline(4096).config()).chain(
        checkpoint_counts
            .iter()
            .map(|&n| *cooo.clone().checkpoints(n).config()),
    );
    let results = Sweep::over(configs)
        .workloads(Suite::paper())
        .trace_len(trace_len)
        .run();
    let limit = &results[0];
    println!(
        "limit (4096-entry conventional machine): {:.3} IPC",
        limit.mean_ipc()
    );
    println!();

    println!("sensitivity to the number of checkpoints (128-entry IQ, 2048-entry SLIQ):");
    println!(
        "{:>13} {:>10} {:>18} {:>18}",
        "checkpoints", "IPC", "slowdown vs limit", "ckpts committed"
    );
    println!("{:-<64}", "");
    for (&checkpoints, r) in checkpoint_counts.iter().zip(&results[1..]) {
        let total_ckpts: u64 = r
            .per_workload
            .iter()
            .map(|w| w.stats.checkpoints_committed)
            .sum();
        println!(
            "{:>13} {:>10.3} {:>17.1}% {:>18}",
            checkpoints,
            r.mean_ipc(),
            100.0 * (1.0 - r.mean_ipc() / limit.mean_ipc()),
            total_ckpts
        );
    }

    println!();
    println!("alternative checkpoint-placement policies (8 checkpoints):");
    println!("{:>26} {:>10}", "policy", "IPC");
    println!("{:-<38}", "");
    let policies: [(&str, CheckpointPolicy); 3] = [
        ("paper (branch/64,512,64)", CheckpointPolicy::paper()),
        ("every 128 instructions", CheckpointPolicy::every_n(128)),
        ("every 512 instructions", CheckpointPolicy::every_n(512)),
    ];
    let policy_results = Sweep::over(
        policies
            .iter()
            .map(|(_, policy)| *cooo.clone().checkpoint_policy(*policy).config()),
    )
    .workloads(Suite::paper())
    .trace_len(trace_len)
    .run();
    for ((name, _), r) in policies.iter().zip(&policy_results) {
        println!("{:>26} {:>10.3}", name, r.mean_ipc());
    }
}
