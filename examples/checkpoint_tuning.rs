//! Checkpoint tuning (the paper's Figure 13, condensed): how many checkpoints
//! does out-of-order commit actually need, and what does the checkpoint
//! placement policy cost?
//!
//! ```text
//! cargo run --release --example checkpoint_tuning
//! ```

use koc_core::CheckpointPolicy;
use koc_sim::{run_workloads, CommitConfig, ProcessorConfig};
use koc_workloads::spec2000fp_like_suite;

fn main() {
    let workloads = spec2000fp_like_suite(12_000);
    let memory_latency = 1000;

    // The paper's limit reference: a 4096-entry conventional machine.
    let limit = run_workloads(ProcessorConfig::baseline(4096, memory_latency), &workloads);
    println!("limit (4096-entry conventional machine): {:.3} IPC", limit.mean_ipc());
    println!();

    println!("sensitivity to the number of checkpoints (128-entry IQ, 2048-entry SLIQ):");
    println!("{:>13} {:>10} {:>18} {:>18}", "checkpoints", "IPC", "slowdown vs limit", "ckpts committed");
    println!("{:-<64}", "");
    for checkpoints in [4usize, 8, 16, 32, 64, 128] {
        let config = ProcessorConfig::cooo(128, 2048, memory_latency).with_checkpoints(checkpoints);
        let r = run_workloads(config, &workloads);
        let total_ckpts: u64 = r.per_workload.iter().map(|w| w.stats.checkpoints_committed).sum();
        println!(
            "{:>13} {:>10.3} {:>17.1}% {:>18}",
            checkpoints,
            r.mean_ipc(),
            100.0 * (1.0 - r.mean_ipc() / limit.mean_ipc()),
            total_ckpts
        );
    }

    println!();
    println!("alternative checkpoint-placement policies (8 checkpoints):");
    println!("{:>26} {:>10}", "policy", "IPC");
    println!("{:-<38}", "");
    let policies: [(&str, CheckpointPolicy); 3] = [
        ("paper (branch/64,512,64)", CheckpointPolicy::paper()),
        ("every 128 instructions", CheckpointPolicy::every_n(128)),
        ("every 512 instructions", CheckpointPolicy::every_n(512)),
    ];
    for (name, policy) in policies {
        let mut config = ProcessorConfig::cooo(128, 2048, memory_latency);
        if let CommitConfig::Checkpointed { policy: p, .. } = &mut config.commit {
            *p = policy;
        }
        let r = run_workloads(config, &workloads);
        println!("{:>26} {:>10.3}", name, r.mean_ipc());
    }
}
