//! Top-down cycle accounting: attribute every cycle of a run to exactly one
//! cause bucket, and record an interval time-series alongside it — the
//! observer analogue of the paper's "where did the time go" analysis.
//!
//! ```text
//! cargo run --release --example cycle_accounting
//! ```
//!
//! Observers compose as tuples, so one run feeds both the
//! [`CycleAccounting`] bucket counters and the [`TimelineRecorder`]
//! interval series. Attaching them never changes simulated timing.

use koc_bench::report::{accounting_table, timeline_table};
use koc_sim::{CycleAccounting, Processor, ProcessorConfig, TimelineRecorder};
use koc_workloads::{kernels, Workload};

fn main() {
    let workload = Workload::generate("pointer_chase", kernels::pointer_chase(), 4_000);
    for (name, config) in [
        ("baseline 128", ProcessorConfig::baseline(128, 1000)),
        ("cooo 128/2048", ProcessorConfig::cooo(128, 2048, 1000)),
    ] {
        let obs = (TimelineRecorder::new(4_096), CycleAccounting::new());
        let (stats, (timeline, accounting)) =
            Processor::with_observer(config, &workload.trace, obs).run_observed();
        let buckets = accounting.into_buckets();
        // The hard invariant: buckets partition the run.
        assert_eq!(buckets.total(), stats.cycles);
        println!(
            "{}",
            accounting_table(
                format!(
                    "Cycle accounting — {} / {name} (IPC {:.3})",
                    workload.name,
                    stats.ipc()
                ),
                &buckets
            )
        );
        println!(
            "{}",
            timeline_table(
                format!("Timeline — {} / {name}", workload.name),
                &timeline.into_records()
            )
        );
    }
    println!("pointer chasing exposes the contrast: the baseline spends its");
    println!("cycles stalled with the window full, while checkpointed commit");
    println!("shifts the same cycles to the memory-wait bucket (the paper's");
    println!("motivation: the window is no longer the limiter, memory is).");
}
