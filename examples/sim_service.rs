//! Load generator for the sim-as-a-service stack: start (or target) a
//! `koc-serve` server, drive two identical job batches through the
//! retrying client, prove the second batch is answered from the
//! crash-safe result cache, and emit the serve report JSON that CI
//! archives as an artifact.
//!
//! ```text
//! cargo run --release --example sim_service                      # in-process server
//! cargo run --release --example sim_service -- --addr HOST:PORT  # external server
//! cargo run --release --example sim_service -- \
//!     --fault-plan bench/faults_demo.json --expect-errors        # fault drill
//! ```
//!
//! With `--fault-plan`, the in-process server runs under the plan's
//! deterministic failure schedule; `--expect-errors` tolerates structured
//! rejections (worker panics, timeouts) as long as the server keeps
//! serving — the graceful-degradation contract, exercised end to end.
//! `--shutdown-after` sends a `shutdown` request at the end (for drills
//! against an external server CI wants torn down).

use koc::serve::{serve, Client, ClientError, FaultPlan, JobSpec, RetryPolicy, ServerConfig};
use koc_bench::report::serve_table;
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sim_service: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The canonical demo batch: both engines over two workloads at two window
/// sizes — eight distinct jobs, so the second pass produces eight cache
/// hits and compatible pending jobs can batch into lockstep lanes.
fn batch() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for engine in ["baseline", "cooo"] {
        for workload in ["stream_add", "pointer_chase"] {
            for window in [64usize, 128] {
                jobs.push(JobSpec {
                    engine: engine.to_string(),
                    workload: workload.to_string(),
                    trace_len: 4_000,
                    window,
                    memory_latency: 400,
                    ..JobSpec::default()
                });
            }
        }
    }
    jobs
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut fault_plan: Option<PathBuf> = None;
    let mut expect_errors = false;
    let mut shutdown_after = false;
    let mut report_path = PathBuf::from("serve-report.json");
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--fault-plan" => fault_plan = Some(PathBuf::from(value("--fault-plan")?)),
            "--expect-errors" => expect_errors = true,
            "--shutdown-after" => shutdown_after = true,
            "--report" => report_path = PathBuf::from(value("--report")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    // An in-process server (the default) gets a fresh cache directory so
    // the cold/warm assertion below is meaningful on every run.
    let in_process = match &addr {
        Some(_) if fault_plan.is_some() => {
            return Err("--fault-plan only applies to the in-process server \
                        (pass it to the koc-serve binary instead)"
                .into())
        }
        Some(_) => None,
        None => {
            let plan = match &fault_plan {
                None => FaultPlan::default(),
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("fault plan {}: {e}", path.display()))?;
                    FaultPlan::from_json_text(&text)
                        .map_err(|e| format!("fault plan {}: {e}", path.display()))?
                }
            };
            let cache_dir =
                std::env::temp_dir().join(format!("koc-sim-service-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&cache_dir);
            let handle = serve("127.0.0.1:0", &cache_dir, ServerConfig::default(), plan)
                .map_err(|e| format!("bind loopback: {e}"))?;
            println!("in-process koc-serve on {}", handle.local_addr());
            Some((handle, cache_dir))
        }
    };
    let target = match (&addr, &in_process) {
        (Some(a), _) => a.clone(),
        (None, Some((handle, _))) => handle.local_addr().to_string(),
        (None, None) => unreachable!("either --addr or an in-process server"),
    };

    let client = Client::new(&target, RetryPolicy::default());
    client.ping().map_err(|e| format!("ping {target}: {e}"))?;

    let jobs = batch();
    let mut errors: Vec<String> = Vec::new();
    let mut round_hits = [0u32, 0u32];
    for (round, label) in ["cold", "warm"].iter().enumerate() {
        let mut ok = 0u32;
        for spec in &jobs {
            match client.submit(spec) {
                Ok(sub) => {
                    ok += 1;
                    round_hits[round] += u32::from(sub.cache_hit);
                    // Replay determinism: the warm pass must reproduce the
                    // cold pass bit for bit, hit or miss.
                    println!(
                        "  [{label}] {}/{} w={} -> {} cycles, ipc {:.3}{}{}",
                        spec.engine,
                        spec.workload,
                        spec.window,
                        sub.result.cycles,
                        sub.result.ipc,
                        if sub.cache_hit { " (cache hit)" } else { "" },
                        if sub.attempts > 1 {
                            format!(" ({} attempts)", sub.attempts)
                        } else {
                            String::new()
                        },
                    );
                }
                Err(err @ ClientError::Rejected { .. }) if expect_errors => {
                    println!("  [{label}] {}/{}: {err}", spec.engine, spec.workload);
                    errors.push(err.to_string());
                }
                Err(err) => return Err(format!("{}/{}: {err}", spec.engine, spec.workload)),
            }
        }
        println!(
            "{label} pass: {ok}/{} ok, {} cache hits",
            jobs.len(),
            round_hits[round]
        );
    }

    // The server must still be healthy after everything above — including
    // any injected faults — and the warm pass must have hit the cache
    // (when this process owns the server and its fresh cache directory).
    client
        .ping()
        .map_err(|e| format!("server unhealthy after load: {e}"))?;
    if in_process.is_some() && !expect_errors && round_hits[1] as usize != jobs.len() {
        return Err(format!(
            "expected every warm-pass job to hit the cache, got {}/{}",
            round_hits[1],
            jobs.len()
        ));
    }
    if in_process.is_some() && round_hits[1] == 0 {
        return Err("warm pass produced zero cache hits".into());
    }
    if expect_errors && errors.is_empty() {
        return Err("--expect-errors was given but every job succeeded \
                    (is the fault plan empty?)"
            .into());
    }

    let stats = client
        .server_stats()
        .map_err(|e| format!("stats {target}: {e}"))?;
    println!();
    println!(
        "{}",
        serve_table(format!("Serve report — {target}"), &stats)
    );
    std::fs::write(&report_path, stats.to_json())
        .map_err(|e| format!("write {}: {e}", report_path.display()))?;
    println!("wrote {}", report_path.display());

    if shutdown_after || in_process.is_some() {
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown {target}: {e}"))?;
    }
    if let Some((handle, cache_dir)) = in_process {
        handle.wait();
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
    Ok(())
}
