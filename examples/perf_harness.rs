//! The performance harness as a library: run the canonical quick-suite,
//! print the human-readable table, and dump machine-readable JSON — all
//! from the same data, with no hand-formatted fields. `SimStats` (and the
//! harness report types) derive the workspace serde stub's `Serialize`,
//! which emits real JSON.
//!
//! ```text
//! cargo run --release --example perf_harness
//! ```

use koc_bench::harness;
use koc_sim::{SimBuilder, Suite};
use koc_workloads::kernels;
use serde::Serialize;

fn main() {
    // The same entry point `koc-bench harness --quick` uses.
    let report = harness::run(true);
    println!("{}", report.to_table());

    // The whole report is one `to_json()` away (this is what lands in
    // BENCH_<n>.json)...
    let json = report.to_json();
    println!(
        "report JSON: {} bytes, schema {}",
        json.len(),
        harness::SCHEMA
    );

    // ...and so is any individual run's full statistics: every counter,
    // distribution and breakdown, straight from the derive.
    let result = SimBuilder::cooo()
        .workloads(Suite::kernel("pointer_chase", kernels::pointer_chase()))
        .trace_len(4_000)
        .build()
        .run();
    println!();
    println!("full SimStats of one run, no hand-formatting:");
    println!("{}", result.per_workload[0].stats.to_json());
}
