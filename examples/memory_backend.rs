//! The memory-backend axis: what happens to the kilo-instruction window's
//! advantage when main memory is *not* ideal.
//!
//! The paper models main memory as a flat latency with unlimited
//! outstanding misses, so a large window always finds memory-level
//! parallelism. This example swaps in the banked DRAM backend and sweeps
//! the MSHR file on the two MLP-contrast workloads, then shows the stride
//! prefetcher clawing some of the loss back.
//!
//! ```text
//! cargo run --release --example memory_backend
//! ```

use koc_sim::{DramConfig, PrefetchConfig, SimBuilder, Suite};

fn main() {
    let mshr_counts = [1usize, 2, 4, 8, 16, 32];

    println!("checkpointed engine, banked DRAM, 1000-cycle memory");
    println!(
        "{:>8}{:>16}{:>16}{:>14}{:>12}",
        "MSHRs", "stream_mlp IPC", "ptr_chase IPC", "mshr stalls", "row hit%"
    );
    println!("{:-<66}", "");
    let machine = || SimBuilder::cooo().pseudo_rob(128).sliq(2048);
    for &mshrs in &mshr_counts {
        let result = machine()
            .dram(
                DramConfig::table1_like()
                    .with_mshr_entries(mshrs)
                    .with_banks(16),
            )
            .workloads(Suite::mlp_contrast())
            .trace_len(8_000)
            .build()
            .run();
        let stream = &result.per_workload[1].stats;
        let chase = &result.per_workload[0].stats;
        println!(
            "{:>8}{:>16.3}{:>16.3}{:>14}{:>11.0}%",
            mshrs,
            stream.ipc(),
            chase.ipc(),
            stream.memory.mshr_full_stalls,
            100.0 * stream.memory.row_buffer_hit_ratio(),
        );
    }
    // The paper's model: unlimited outstanding misses.
    let flat = machine()
        .workloads(Suite::mlp_contrast())
        .trace_len(8_000)
        .build()
        .run();
    println!(
        "{:>8}{:>16.3}{:>16.3}{:>14}{:>12}",
        "flat",
        flat.per_workload[1].stats.ipc(),
        flat.per_workload[0].stats.ipc(),
        "-",
        "-"
    );

    println!();
    println!("stride prefetching on the paper's stream_add kernel (flat backend)");
    for (label, prefetch) in [
        ("off", PrefetchConfig::Off),
        ("stride x4", PrefetchConfig::stride()),
    ] {
        let result = SimBuilder::cooo()
            .prefetch(prefetch)
            .workloads(Suite::paper())
            .trace_len(8_000)
            .build()
            .run();
        let s = &result.per_workload[0].stats;
        println!(
            "  {label:>10}: {:.3} IPC  (prefetches issued {}, useful {})",
            s.ipc(),
            s.memory.prefetch_issued,
            s.memory.prefetch_useful,
        );
    }

    println!();
    println!("Reading: stream_mlp scales with the MSHR count — the window exposes the");
    println!("parallelism, the MSHR file bounds it — while pointer_chase (MLP = 1) is");
    println!("completely insensitive. The flat default reproduces the paper exactly.");
}
