//! Streaming ingestion: unbounded-length runs in O(window) memory.
//!
//! ```bash
//! cargo run --release --example streaming_ingestion
//! ```
//!
//! The classic path materializes a workload's whole dynamic trace before
//! the run starts, so run length is capped by host memory. The streaming
//! path hands the pipeline an `InstructionSource` instead: instructions
//! are generated on demand, buffered only between the oldest live
//! recovery point and the fetch head (the `ReplayWindow`), and replayed
//! from that buffer on checkpoint rollback. This example drives a
//! 5-million-instruction run and prints the replay window's high-water
//! mark — thousands of entries, not millions — then composes a scenario
//! from combinators.

use koc::isa::{InstructionSource, SourceExt};
use koc::sim::{NullObserver, SimBuilder, Suite};
use koc::workloads::{kernels, KernelSource};

fn main() {
    // A run ~500x longer than the default suite traces, in O(window)
    // memory. `run_one` accepts anything implementing
    // `InstructionSource` (a `&Trace` included).
    let session = SimBuilder::cooo().build();
    let config = kernels::stream_add().with_target_len(5_000_000);
    let source = KernelSource::new("stream_add", config);
    println!(
        "streaming {} instructions through the replay window...",
        source.len_hint().expect("stream_add length is exact")
    );
    let start = std::time::Instant::now();
    let stats = session.run_one(source, NullObserver).0;
    println!(
        "  {} retired, {} cycles, IPC {:.2}, {:.1}s wall",
        stats.committed_instructions,
        stats.cycles,
        stats.ipc(),
        start.elapsed().as_secs_f64()
    );
    println!(
        "  replay-window peak: {} instructions ({}x smaller than the stream)\n",
        stats.replay_window_peak,
        stats.committed_instructions as usize / stats.replay_window_peak.max(1)
    );

    // Combinators compose scenarios without materializing anything: warm
    // the caches with a resident kernel, then measure an irregular one,
    // twice end to end.
    let warm = KernelSource::new(
        "dense_blocked",
        kernels::dense_blocked().with_target_len(5_000),
    );
    let hot = KernelSource::new("gather", kernels::gather().with_target_len(20_000));
    let scenario = warm.then(hot.repeat_n(2)).warmup_measure(5_000, 30_000);
    let stats = session.run_one(scenario, NullObserver).0;
    println!(
        "combinator scenario (warmup+measure): {} retired, IPC {:.2}",
        stats.committed_instructions,
        stats.ipc()
    );

    // The streamed suite: same cycle counts as the materialized suite,
    // without ever building a trace.
    let result = SimBuilder::cooo()
        .workloads(Suite::paper())
        .trace_len(10_000)
        .streamed()
        .build()
        .run();
    println!("streamed paper suite: {:.2} mean IPC", result.mean_ipc());
}
