//! The memory wall (the paper's Figure 1, condensed): how IPC scales with the
//! number of in-flight instructions a conventional processor supports, for
//! different main-memory latencies.
//!
//! ```text
//! cargo run --release --example memory_wall
//! ```

use koc_sim::{ProcessorConfig, Suite, Sweep};

fn main() {
    let windows = [128usize, 512, 2048];
    let latencies = [100u32, 500, 1000];

    // One parallel grid: per window, perfect-L2 plus one machine per latency.
    let configs = windows.iter().flat_map(|&window| {
        std::iter::once(ProcessorConfig::baseline_perfect_l2(window)).chain(
            latencies
                .iter()
                .map(move |&lat| ProcessorConfig::baseline(window, lat)),
        )
    });
    let results = Sweep::over(configs)
        .workloads(Suite::paper())
        .trace_len(12_000)
        .run();

    println!("suite-average IPC by window size and memory latency");
    print!("{:>10}", "window");
    print!("{:>14}", "perfect L2");
    for lat in latencies {
        print!("{:>14}", format!("{lat} cycles"));
    }
    println!();
    println!("{:-<66}", "");

    let per_window = 1 + latencies.len();
    for (wi, window) in windows.iter().enumerate() {
        print!("{:>10}", window);
        for r in &results[wi * per_window..(wi + 1) * per_window] {
            print!("{:>14.3}", r.mean_ipc());
        }
        println!();
    }

    println!();
    println!("Reading: with 1000-cycle memory, a 128-entry window is several times slower than");
    println!("the same pipeline with a perfect L2; growing the window recovers most of that");
    println!("loss — the observation that motivates kilo-instruction processors.");
}
