//! The memory wall (the paper's Figure 1, condensed): how IPC scales with the
//! number of in-flight instructions a conventional processor supports, for
//! different main-memory latencies.
//!
//! ```text
//! cargo run --release --example memory_wall
//! ```

use koc_sim::{run_workloads, ProcessorConfig};
use koc_workloads::spec2000fp_like_suite;

fn main() {
    let trace_len = 12_000;
    let workloads = spec2000fp_like_suite(trace_len);
    let windows = [128usize, 512, 2048];
    let latencies = [100u32, 500, 1000];

    println!("suite-average IPC by window size and memory latency");
    print!("{:>10}", "window");
    print!("{:>14}", "perfect L2");
    for lat in latencies {
        print!("{:>14}", format!("{lat} cycles"));
    }
    println!();
    println!("{:-<66}", "");

    for window in windows {
        print!("{:>10}", window);
        let perfect = run_workloads(ProcessorConfig::baseline_perfect_l2(window), &workloads);
        print!("{:>14.3}", perfect.mean_ipc());
        for lat in latencies {
            let r = run_workloads(ProcessorConfig::baseline(window, lat), &workloads);
            print!("{:>14.3}", r.mean_ipc());
        }
        println!();
    }

    println!();
    println!("Reading: with 1000-cycle memory, a 128-entry window is several times slower than");
    println!("the same pipeline with a perfect L2; growing the window recovers most of that");
    println!("loss — the observation that motivates kilo-instruction processors.");
}
