//! Offline stand-in for `criterion`: `criterion_group!`/`criterion_main!`
//! benchmarks that time each closure over a fixed number of samples and
//! print mean/min wall-clock times. No statistical analysis, plotting or
//! baseline comparison — just honest timings with the same source-level API.
//! See `third_party/README.md`.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&name.into(), self.default_sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark function; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `f` (after one untimed warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up plus three timed samples.
        assert_eq!(runs, 4);
    }
}
