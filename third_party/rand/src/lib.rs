//! Offline stand-in for the `rand` crate: a seedable xoshiro256++ generator
//! behind the `SeedableRng` / `RngExt` traits this repository uses. The
//! generator is deterministic for a given seed on every platform, which is
//! exactly what the trace generators and tests rely on. See
//! `third_party/README.md`.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers (stand-in for the `rand::Rng` extension methods).
pub trait RngExt {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed float in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        // 53 mantissa bits of the next output word.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// A range that can be sampled uniformly (stand-in for
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngExt>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngExt>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + rng.random_f64() * (self.end - self.start)
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The standard generator: xoshiro256++ seeded through SplitMix64, the
    /// same construction the real `rand` crate documents for reproducible
    /// simulation use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
