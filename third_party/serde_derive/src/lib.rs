//! No-op stand-in for `serde_derive`: accepts `#[derive(Serialize,
//! Deserialize)]` (including `#[serde(...)]` helper attributes) and emits
//! nothing. See `third_party/README.md`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
