//! Stand-in for `serde_derive` that generates *working* JSON serialization.
//!
//! `#[derive(Serialize)]` parses the struct/enum shape directly from the
//! token stream (no `syn`/`quote` — this crate must build offline with no
//! dependencies) and emits an implementation of the stub `serde::Serialize`
//! trait's `write_json`, following serde's JSON conventions:
//!
//! * named-field structs → objects (`{"field": ...}`)
//! * newtype structs → transparent (the inner value)
//! * tuple structs → arrays
//! * unit enum variants → strings (`"Variant"`)
//! * data-carrying variants → single-key objects (`{"Variant": ...}`)
//!
//! `#[derive(Deserialize)]` remains a no-op marker (nothing in this
//! repository parses with serde). Generic types are not supported — the
//! workspace derives only on concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let parsed = parse_item(&tokens);
    generate(&parsed)
        .parse()
        .expect("serde stub derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Shape {
    /// Named-field struct: field names in declaration order.
    Named(Vec<String>),
    /// Tuple struct: field count.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past `#[...]` attributes and a `pub` / `pub(...)` visibility
/// prefix starting at `i`; returns the index of the next significant token.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 2; // the '#' and its bracket group
            continue;
        }
        if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            if i < tokens.len() {
                if let TokenTree::Group(g) = &tokens[i] {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super) / ...
                    }
                }
            }
            continue;
        }
        return i;
    }
}

fn parse_item(tokens: &[TokenTree]) -> Item {
    let mut i = skip_attrs_and_vis(tokens, 0);
    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!("serde stub derive: expected `struct` or `enum`");
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected a type name, found {other}"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde stub derive does not support generic types ({name})");
    }
    let shape = if is_enum {
        let TokenTree::Group(body) = &tokens[i] else {
            panic!("serde stub derive: expected an enum body for {name}");
        };
        Shape::Enum(parse_variants(
            &body.stream().into_iter().collect::<Vec<_>>(),
        ))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple(
                count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(t) if is_punct(t, ';') => Shape::Unit,
            None => Shape::Unit,
            Some(other) => panic!("serde stub derive: unexpected token {other} in {name}"),
        }
    };
    Item { name, shape }
}

/// Advances past one type (or other comma-terminated run of tokens),
/// treating `<`/`>` as nesting so commas inside generic arguments do not
/// split the field list. Returns the index of the top-level `,` (or
/// `tokens.len()`).
fn skip_to_top_level_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            t if is_punct(t, '<') => angle_depth += 1,
            t if is_punct(t, '>') => angle_depth -= 1,
            t if is_punct(t, ',') && angle_depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(field) = &tokens[i] else {
            panic!(
                "serde stub derive: expected a field name, found {}",
                tokens[i]
            );
        };
        fields.push(field.to_string());
        i += 1; // the name
        debug_assert!(is_punct(&tokens[i], ':'));
        i = skip_to_top_level_comma(tokens, i) + 1;
    }
    fields
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_to_top_level_comma(tokens, i) + 1;
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde stub derive: expected a variant name, found {}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => VariantKind::Named(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip any payload group / explicit discriminant up to the comma.
        i = skip_to_top_level_comma(tokens, i) + 1;
    }
    variants
}

/// Emits `out.push_str("...")` for a literal JSON fragment.
fn push_literal(code: &mut String, fragment: &str) {
    code.push_str("out.push_str(\"");
    for c in fragment.chars() {
        match c {
            '"' => code.push_str("\\\""),
            '\\' => code.push_str("\\\\"),
            c => code.push(c),
        }
    }
    code.push_str("\");");
}

/// Emits `write_json` calls for an object body `{"f": <f>, ...}` whose
/// fields are read through `accessor` (e.g. `&self.` or a bound name).
fn object_body(code: &mut String, fields: &[String], accessor: impl Fn(&str) -> String) {
    for (i, f) in fields.iter().enumerate() {
        let sep = if i == 0 { "{" } else { "," };
        push_literal(code, &format!("{sep}\"{f}\":"));
        code.push_str(&format!(
            "::serde::Serialize::write_json({}, out);",
            accessor(f)
        ));
    }
    if fields.is_empty() {
        push_literal(code, "{");
    }
    push_literal(code, "}");
}

fn generate(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::Named(fields) => {
            object_body(&mut body, fields, |f| format!("&self.{f}"));
        }
        Shape::Tuple(1) => {
            // Newtype structs are transparent, as in serde.
            body.push_str("::serde::Serialize::write_json(&self.0, out);");
        }
        Shape::Tuple(n) => {
            push_literal(&mut body, "[");
            for i in 0..*n {
                if i > 0 {
                    push_literal(&mut body, ",");
                }
                body.push_str(&format!("::serde::Serialize::write_json(&self.{i}, out);"));
            }
            push_literal(&mut body, "]");
        }
        Shape::Unit => {
            push_literal(&mut body, "null");
        }
        Shape::Enum(variants) => {
            assert!(
                !variants.is_empty(),
                "serde stub derive: cannot serialize an empty enum ({name})"
            );
            body.push_str("match self {");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!("{name}::{vname} => {{"));
                        push_literal(&mut body, &format!("\"{vname}\""));
                        body.push('}');
                    }
                    VariantKind::Tuple(1) => {
                        body.push_str(&format!("{name}::{vname}(__f0) => {{"));
                        push_literal(&mut body, &format!("{{\"{vname}\":"));
                        body.push_str("::serde::Serialize::write_json(__f0, out);");
                        push_literal(&mut body, "}");
                        body.push('}');
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!("{name}::{vname}({}) => {{", binds.join(", ")));
                        push_literal(&mut body, &format!("{{\"{vname}\":["));
                        for (i, b) in binds.iter().enumerate() {
                            if i > 0 {
                                push_literal(&mut body, ",");
                            }
                            body.push_str(&format!("::serde::Serialize::write_json({b}, out);"));
                        }
                        push_literal(&mut body, "]}");
                        body.push('}');
                    }
                    VariantKind::Named(fields) => {
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{",
                            fields.join(", ")
                        ));
                        push_literal(&mut body, &format!("{{\"{vname}\":"));
                        object_body(&mut body, fields, |f| f.to_string());
                        push_literal(&mut body, "}");
                        body.push('}');
                    }
                }
                body.push(',');
            }
            body.push('}');
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut ::std::string::String) {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
