//! Offline stand-in for `serde`: the `Serialize`/`Deserialize` traits exist
//! as markers and the derives expand to nothing, so `#[derive(Serialize,
//! Deserialize)]` compiles without pulling in the real framework. See
//! `third_party/README.md` for how to swap the real crate back in.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
