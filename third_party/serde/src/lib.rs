//! Offline stand-in for `serde`, specialised to JSON output.
//!
//! Unlike the real framework (which is generic over serialization formats),
//! this stub's [`Serialize`] writes JSON directly: the derive in
//! `serde_derive` generates a [`Serialize::write_json`] implementation from
//! the struct/enum shape, so `#[derive(Serialize)]` gives every type a real
//! [`Serialize::to_json`] without pulling in the full framework. The output
//! follows serde's JSON conventions: structs are objects, newtype structs
//! are transparent, unit enum variants are strings, data-carrying variants
//! are single-key objects.
//!
//! `Deserialize` remains a marker trait (nothing in this repository parses
//! with serde). See `third_party/README.md` for how to swap the real crate
//! back in.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-producing stand-in for `serde::Serialize`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);

    /// The JSON encoding of `self` as a fresh string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Escapes and quotes `s` as a JSON string.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 48], *self as i128));
            }
        })*
    };
}

/// Formats an integer without going through `format!` (reports write many
/// counters).
fn itoa_buf(buf: &mut [u8; 48], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        // Remainder on negative values is negative in Rust; fold the sign in
        // per digit so i128::MIN needs no absolute value.
        buf[i] = b'0' + (v % 10).unsigned_abs() as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for u128 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // Shortest round-trip representation; integral values keep a
            // trailing ".0" so they read back as floats.
            out.push_str(&format!("{self:?}"));
        } else {
            // JSON has no NaN/Infinity.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        let mut b = [0u8; 4];
        write_json_string(self.encode_utf8(&mut b), out);
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

fn write_json_seq<'a, T: Serialize + 'a>(items: impl IntoIterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self, out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self, out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self, out);
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self, out);
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self, out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {
        $(impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        })*
    };
}

impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Maps serialize as JSON objects; keys use their `Display` form (string
/// keys are the only kind JSON supports).
impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&k.to_string(), out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize_as_json_scalars() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-7i32).to_json(), "-7");
        assert_eq!(i64::MIN.to_json(), i64::MIN.to_string());
        assert_eq!(u64::MAX.to_json(), u64::MAX.to_string());
        assert_eq!(true.to_json(), "true");
        assert_eq!(2.5f64.to_json(), "2.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\n".to_json(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn containers_serialize_as_arrays_and_objects() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(5u8).to_json(), "5");
        assert_eq!(None::<u8>.to_json(), "null");
        assert_eq!([1u8, 2].to_json(), "[1,2]");
        assert_eq!((1u8, "x".to_string()).to_json(), "[1,\"x\"]");
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(m.to_json(), "{\"k\":9}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(3.0f64.to_json(), "3.0");
    }
}
