//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use rand::RngExt;
use std::ops::Range;

/// A strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements come from `elem`.
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        (0..len).map(|_| self.elem.new_value(rng)).collect()
    }
}

/// Vectors of `size.start..size.end` elements drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_the_size_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = vec(0u32..100, 1..10);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }
}
