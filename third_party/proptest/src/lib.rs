//! Offline stand-in for `proptest`: deterministic randomized property
//! testing with the same macro surface this repository uses (`proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `any`, ranges, tuples, `Just`, `prop_map` and `collection::vec`).
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the generating seed, and the seeds are fixed per test name, so failures
//! reproduce exactly across runs. See `third_party/README.md`.

pub mod collection;
pub mod strategy;

pub use strategy::{any, Just, Strategy, Union};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything the standard `use proptest::prelude::*;` import provides.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Stable 64-bit FNV-1a hash of a test name, used to derive per-test seeds.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Chooses uniformly between the given strategies (all producing the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($s))+
    };
}

/// Defines a function returning a composite strategy:
///
/// ```ignore
/// prop_compose! {
///     fn arb_point()(x in 0..10i32, y in 0..10i32) -> (i32, i32) { (x, y) }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()(
            $($arg:ident in $strat:expr),* $(,)?
        ) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::FnStrategy::new(move |rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)*
                $body
            })
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written in the block, as with the
/// real crate) that checks the body against `ProptestConfig::cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let seed = $crate::seed_for(stringify!($name), case);
                    let mut __proptest_rng =
                        <$crate::strategy::TestRng as $crate::strategy::NewRng>::from_seed(seed);
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}
