//! Value-generation strategies: the generation half of proptest's
//! `Strategy` abstraction (no shrinking).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG driving generation.
pub type TestRng = StdRng;

/// Seeded construction of the test RNG (object-safe helper for the macros).
pub trait NewRng {
    /// Builds the RNG from a 64-bit seed.
    fn from_seed(seed: u64) -> Self;
}

impl NewRng for StdRng {
    fn from_seed(seed: u64) -> Self {
        StdRng::seed_from_u64(seed)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Generating through a shared reference (lets helpers take strategies by
/// value or reference interchangeably).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy built from a generation closure (used by `prop_compose!`).
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    /// Wraps a generation closure.
    pub fn new<O>(f: F) -> Self
    where
        F: Fn(&mut TestRng) -> O,
    {
        FnStrategy { f }
    }
}

impl<O, F: Fn(&mut TestRng) -> O> Strategy for FnStrategy<F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(rng)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// An empty union; `or` adds arms.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one arm.
    pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
        self.arms.push(Box::new(s));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The `any::<T>()` strategy.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_map_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = (0u8..6, 10u64..=20, any::<bool>()).prop_map(|(a, b, c)| (a as u64 + b, c));
        for _ in 0..200 {
            let (v, _) = s.new_value(&mut rng);
            assert!((10..26).contains(&v));
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = Union::new().or(Just(1u8)).or(Just(2u8)).or(Just(3u8));
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
