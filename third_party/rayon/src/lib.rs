//! Offline stand-in for `rayon`: the `par_iter().map(..).collect()` shape
//! used by this repository, executed over `std::thread::scope` with one
//! chunk per available core. Results always come back in input order, which
//! matches rayon's indexed-collect guarantee. See `third_party/README.md`.

/// The common imports (`use rayon::prelude::*;`).
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` on slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// A parallel iterator over shared references to the elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped parallel iterator; `collect` executes it.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map over all elements (fanning out across cores) and
    /// collects the results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map_ordered(self.items, self.f).into_iter().collect()
    }
}

fn par_map_ordered<'a, T: Sync, R: Send>(items: &'a [T], f: impl Fn(&'a T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if n <= 1 || threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let f = &f;
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot is filled by its chunk's thread"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_inputs() {
        let one = [7u32];
        let r: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(r, vec![8]);
        let empty: [u32; 0] = [];
        let r: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(r.is_empty());
    }
}
